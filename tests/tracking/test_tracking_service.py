"""TrackingService: session lifecycle, TTL/capacity eviction,
thread safety, and survival across serving hot swaps."""

import threading

import numpy as np
import pytest

from repro.core import TopoACDifferentiator
from repro.exceptions import TrackingError
from repro.geometry import Polygon
from repro.positioning import WKNNEstimator
from repro.serving import PositioningService
from repro.tracking import MotionConfig, TrackingService


@pytest.fixture(scope="module")
def positioning(kaide_smoke, longhu_smoke):
    svc = PositioningService(cache_size=64)
    for name, ds in (("kaide", kaide_smoke), ("longhu", longhu_smoke)):
        svc.deploy(
            name,
            ds.radio_map,
            TopoACDifferentiator(entities=ds.venue.plan.entities),
            estimator=WKNNEstimator(),
        )
    return svc


@pytest.fixture
def tracking(positioning):
    return TrackingService(positioning)


def scans(dataset, n, seed):
    rng = np.random.default_rng(seed)
    rps = dataset.venue.reference_points
    return np.stack(
        [
            dataset.channel.measure(rps[i % len(rps)], rng).rssi
            for i in range(n)
        ]
    )


class TestLifecycle:
    def test_start_step_end(self, tracking, kaide_smoke):
        fps = scans(kaide_smoke, 3, 0)
        sid = tracking.start("kaide", fps[0], t=0.0)
        assert tracking.session_count == 1
        fix = tracking.step(sid, fps[1], t=1.0)
        assert fix.session_id == sid
        assert fix.venue == "kaide"
        assert fix.position.shape == (2,)
        assert fix.raw.shape == (2,)
        assert np.isfinite(fix.position).all()
        summary = tracking.end(sid)
        assert summary.steps == 1
        assert summary.duration == pytest.approx(1.0)
        assert tracking.session_count == 0

    def test_first_fix_is_raw_fix(self, tracking, kaide_smoke):
        fp = scans(kaide_smoke, 1, 1)[0]
        raw = tracking.positioning.query("kaide", fp)
        sid = tracking.start("kaide", fp, t=0.0)
        np.testing.assert_allclose(tracking.position(sid), raw)

    def test_custom_session_id(self, tracking, kaide_smoke):
        fp = scans(kaide_smoke, 1, 2)[0]
        sid = tracking.start(
            "kaide", fp, t=0.0, session_id="device-42"
        )
        assert sid == "device-42"
        with pytest.raises(TrackingError, match="already exists"):
            tracking.start("kaide", fp, t=1.0, session_id="device-42")

    def test_unknown_session_rejected(self, tracking, kaide_smoke):
        fp = scans(kaide_smoke, 1, 3)[0]
        with pytest.raises(TrackingError, match="unknown or expired"):
            tracking.step("ghost", fp, t=0.0)
        with pytest.raises(TrackingError, match="unknown or expired"):
            tracking.end("ghost")

    def test_step_after_end_rejected(self, tracking, kaide_smoke):
        fps = scans(kaide_smoke, 2, 4)
        sid = tracking.start("kaide", fps[0], t=0.0)
        tracking.end(sid)
        with pytest.raises(TrackingError, match="unknown or expired"):
            tracking.step(sid, fps[1], t=1.0)

    def test_mixed_venue_step_batch(
        self, tracking, kaide_smoke, longhu_smoke
    ):
        ka = scans(kaide_smoke, 2, 5)
        lo = scans(longhu_smoke, 2, 6)
        sids = tracking.start_batch(
            ["kaide", "longhu"], [ka[0], lo[0]], times=[0.0, 0.0]
        )
        batch = tracking.step_batch(
            sids, [ka[1], lo[1]], times=[1.0, 1.0]
        )
        assert batch.venues == ("kaide", "longhu")
        assert batch.positions.shape == (2, 2)
        assert np.isfinite(batch.positions).all()
        fix = batch.fix(1)
        assert fix.venue == "longhu"

    def test_duplicate_sid_in_batch_rejected(
        self, tracking, kaide_smoke
    ):
        fps = scans(kaide_smoke, 2, 7)
        sid = tracking.start("kaide", fps[0], t=0.0)
        with pytest.raises(TrackingError, match="once per batch"):
            tracking.step_batch(
                [sid, sid], [fps[1], fps[1]], times=[1.0, 1.0]
            )

    def test_empty_batch_rejected(self, tracking):
        with pytest.raises(TrackingError, match="empty"):
            tracking.step_batch([], [], times=[])

    def test_tracked_differs_from_raw_after_steps(
        self, tracking, kaide_smoke
    ):
        """After fusing history, the track is no longer the raw fix."""
        fps = scans(kaide_smoke, 4, 8)
        sid = tracking.start("kaide", fps[0], t=0.0)
        last = None
        for k in range(1, 4):
            last = tracking.step(sid, fps[k], t=float(k))
        assert not np.allclose(last.position, last.raw)


class TestEviction:
    def test_ttl_evicts_idle_sessions(self, positioning, kaide_smoke):
        tracking = TrackingService(positioning, ttl_seconds=100.0)
        fps = scans(kaide_smoke, 3, 10)
        stale = tracking.start("kaide", fps[0], t=0.0)
        fresh = tracking.start("kaide", fps[1], t=90.0)
        # Clock advances past stale's TTL but not fresh's.
        tracking.step(fresh, fps[2], t=150.0)
        assert tracking.session_count == 1
        assert tracking.stats.evicted_ttl == 1
        with pytest.raises(TrackingError, match="unknown or expired"):
            tracking.step(stale, fps[2], t=151.0)

    def test_capacity_evicts_least_recently_active(
        self, positioning, kaide_smoke
    ):
        tracking = TrackingService(positioning, max_sessions=3)
        fps = scans(kaide_smoke, 5, 11)
        a = tracking.start("kaide", fps[0], t=0.0)
        b = tracking.start("kaide", fps[1], t=1.0)
        c = tracking.start("kaide", fps[2], t=2.0)
        # Touch a, so b is now the least recently active.
        tracking.step(a, fps[3], t=3.0)
        d = tracking.start("kaide", fps[4], t=4.0)
        assert tracking.session_count == 3
        assert tracking.stats.evicted_capacity == 1
        assert set(tracking.session_ids) == {a, c, d}
        with pytest.raises(TrackingError, match="unknown or expired"):
            tracking.step(b, fps[0], t=5.0)

    def test_ttl_prunes_before_capacity(
        self, positioning, kaide_smoke
    ):
        """An expired session is a TTL eviction, not a capacity one —
        and its slot frees room so live sessions survive the cap."""
        tracking = TrackingService(
            positioning, ttl_seconds=10.0, max_sessions=2
        )
        fps = scans(kaide_smoke, 4, 12)
        expired = tracking.start("kaide", fps[0], t=0.0)
        live = tracking.start("kaide", fps[1], t=95.0)
        tracking.start("kaide", fps[2], t=100.0)
        stats = tracking.stats
        assert stats.evicted_ttl == 1
        assert stats.evicted_capacity == 0
        assert expired not in tracking.session_ids
        assert live in tracking.session_ids

    def test_eviction_ordering_under_combined_pressure(
        self, positioning, kaide_smoke
    ):
        """TTL prunes expired sessions first; capacity then drops
        survivors strictly least-recently-active first — and room
        freed by TTL spares sessions capacity would otherwise take."""
        tracking = TrackingService(
            positioning, ttl_seconds=50.0, max_sessions=2
        )
        fps = scans(kaide_smoke, 4, 13)
        a = tracking.start("kaide", fps[0], t=0.0)
        b = tracking.start("kaide", fps[1], t=30.0)
        # Nothing expired at t=40 -> capacity evicts a (the LRU).
        c = tracking.start("kaide", fps[2], t=40.0)
        assert set(tracking.session_ids) == {b, c}
        assert tracking.stats.evicted_capacity == 1
        # At t=85, b (idle since 30) is past TTL; the freed room
        # admits d without capacity-evicting the still-live c.
        d = tracking.start("kaide", fps[3], t=85.0)
        assert set(tracking.session_ids) == {c, d}
        stats = tracking.stats
        assert stats.evicted_ttl == 1
        assert stats.evicted_capacity == 1

    def test_stale_timestamp_does_not_rewind_session(
        self, positioning, kaide_smoke
    ):
        """One out-of-order device timestamp must not pull a live
        session back into its own TTL window."""
        tracking = TrackingService(positioning, ttl_seconds=100.0)
        fps = scans(kaide_smoke, 4, 14)
        sid = tracking.start("kaide", fps[0], t=1000.0)
        tracking.step(sid, fps[1], t=1001.0)
        tracking.step(sid, fps[2], t=5.0)  # stale, clamped gap
        fix = tracking.step(sid, fps[3], t=1002.0)  # still alive
        assert np.isfinite(fix.position).all()
        assert tracking.stats.evicted_ttl == 0

    def test_expired_session_id_can_restart(
        self, positioning, kaide_smoke
    ):
        tracking = TrackingService(positioning, ttl_seconds=10.0)
        fps = scans(kaide_smoke, 2, 15)
        tracking.start(
            "kaide", fps[0], t=0.0, session_id="device-7"
        )
        # Long silence; the same device reconnects under its id.
        sid = tracking.start(
            "kaide", fps[1], t=100.0, session_id="device-7"
        )
        assert sid == "device-7"
        assert tracking.session_count == 1
        assert tracking.stats.evicted_ttl == 1

    def test_oversized_start_batch_rejected(
        self, positioning, kaide_smoke
    ):
        tracking = TrackingService(positioning, max_sessions=2)
        fps = scans(kaide_smoke, 3, 16)
        with pytest.raises(TrackingError, match="max_sessions"):
            tracking.start_batch(
                ["kaide"] * 3, list(fps), times=[0.0, 0.0, 0.0]
            )
        assert tracking.session_count == 0

    def test_mixed_time_domains_rejected(
        self, positioning, kaide_smoke
    ):
        fps = scans(kaide_smoke, 2, 17)
        logical = TrackingService(positioning)
        sid = logical.start("kaide", fps[0], t=0.0)
        with pytest.raises(TrackingError, match="wall-clock"):
            logical.step(sid, fps[1])  # t omitted on a logical fleet
        wall = TrackingService(positioning)
        sid = wall.start("kaide", fps[0])  # wall-clock fleet
        with pytest.raises(TrackingError, match="wall-clock"):
            wall.step(sid, fps[1], t=1.0)
        wall.step(sid, fps[1])  # staying in-domain still works

    def test_bad_config_rejected(self, positioning):
        with pytest.raises(TrackingError, match="ttl_seconds"):
            TrackingService(positioning, ttl_seconds=0.0)
        with pytest.raises(TrackingError, match="max_sessions"):
            TrackingService(positioning, max_sessions=0)
        with pytest.raises(TrackingError, match="constraint_mode"):
            TrackingService(positioning, constraint_mode="wander")


class TestStats:
    def test_counters_accumulate(self, tracking, kaide_smoke):
        fps = scans(kaide_smoke, 3, 20)
        sid = tracking.start("kaide", fps[0], t=0.0)
        tracking.step(sid, fps[1], t=1.0)
        tracking.step_batch([sid], [fps[2]], times=[2.0])
        tracking.end(sid)
        stats = tracking.stats
        assert stats.sessions_started == 1
        assert stats.sessions_ended == 1
        assert stats.steps == 2
        assert stats.batches == 2
        assert stats.active_hint == 0
        assert stats.seconds > 0
        assert "steps=2" in stats.render()

    def test_stats_is_a_snapshot(self, tracking, kaide_smoke):
        fps = scans(kaide_smoke, 2, 21)
        sid = tracking.start("kaide", fps[0], t=0.0)
        before = tracking.stats
        tracking.step(sid, fps[1], t=1.0)
        assert before.steps == 0  # old snapshot unaffected
        tracking.reset_stats()
        assert tracking.stats.steps == 0

    def test_constraint_counters_via_far_walkable(
        self, positioning, kaide_smoke
    ):
        """A walkable area far from the venue forces every fused
        position to clamp — proving the geometry is wired through
        the service layer."""
        tracking = TrackingService(positioning)
        tracking.register_walkable(
            "kaide", Polygon.rectangle(-1000.0, -1000.0, -990.0, -990.0)
        )
        fps = scans(kaide_smoke, 3, 22)
        sid = tracking.start("kaide", fps[0], t=0.0)
        for k in (1, 2):
            fix = tracking.step(sid, fps[k], t=float(k))
            assert fix.clamped
            assert -1000.0 <= fix.position[0] <= -990.0
        assert tracking.stats.clamped_fixes == 2


class TestHotSwaps:
    def test_sessions_survive_reload(
        self, positioning, kaide_smoke, tmp_path
    ):
        tracking = TrackingService(positioning)
        fps = scans(kaide_smoke, 3, 30)
        sid = tracking.start("kaide", fps[0], t=0.0)
        tracking.step(sid, fps[1], t=1.0)
        artifact = tmp_path / "kaide.npz"
        positioning.shard("kaide").save(artifact)
        positioning.reload("kaide", artifact)
        fix = tracking.step(sid, fps[2], t=2.0)
        assert np.isfinite(fix.position).all()
        assert tracking.end(sid).steps == 2

    def test_sessions_survive_apply_delta(self, kaide_smoke):
        from repro.ingest import StreamIngestor, simulate_new_survey

        # Own deployment: the module-scoped service may have been
        # warm-reloaded (which drops the delta source) by other tests.
        positioning = PositioningService(cache_size=16)
        positioning.deploy(
            "kaide",
            kaide_smoke.radio_map,
            TopoACDifferentiator(
                entities=kaide_smoke.venue.plan.entities
            ),
            estimator=WKNNEstimator(),
        )
        tracking = TrackingService(positioning)
        fps = scans(kaide_smoke, 3, 31)
        sid = tracking.start("kaide", fps[0], t=0.0)
        tracking.step(sid, fps[1], t=1.0)
        shard = positioning.shard("kaide")
        base_map = shard.radio_map
        tables = simulate_new_survey(
            kaide_smoke, n_passes=1, seed=77
        )
        table = tables[0]
        table.path_id = int(base_map.path_ids.max()) + 1
        ingestor = StreamIngestor(base_map.n_aps)
        ingestor.ingest_table(table)
        positioning.apply_delta("kaide", ingestor.drain())
        fix = tracking.step(sid, fps[2], t=2.0)
        assert np.isfinite(fix.position).all()
        assert tracking.end(sid).steps == 2


class TestThreadSafety:
    def test_concurrent_sessions_step_cleanly(
        self, positioning, kaide_smoke
    ):
        tracking = TrackingService(positioning)
        n_workers, n_steps = 6, 10
        pools = [
            scans(kaide_smoke, n_steps + 1, 40 + w)
            for w in range(n_workers)
        ]
        sids = tracking.start_batch(
            ["kaide"] * n_workers,
            [pool[0] for pool in pools],
            times=[0.0] * n_workers,
        )
        errors = []

        def worker(w):
            try:
                for k in range(1, n_steps + 1):
                    tracking.step(
                        sids[w], pools[w][k], t=float(k)
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(w,))
            for w in range(n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = tracking.stats
        assert stats.steps == n_workers * n_steps
        assert tracking.session_count == n_workers
