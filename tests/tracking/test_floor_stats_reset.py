"""Floor-routing counter reset semantics.

``register_floors`` replaces a venue's floor configuration, so by
default a *re*-registration re-baselines the three floor-routing
counters (switches / rejections / re-anchors) — stats from the old
configuration would be misleading under the new one.  First-time
registration must never reset anything, and ``reset_floor_stats=False``
keeps the counters cumulative across reloads.
"""

import pytest

from repro.core import TopoACDifferentiator
from repro.obs import MetricsRegistry, Telemetry
from repro.positioning import WKNNEstimator
from repro.serving import PositioningService, deploy_floors
from repro.tracking import TrackingService


@pytest.fixture
def floor_service(multifloor_smoke):
    service = PositioningService(cache_size=0)
    deploy_floors(
        service,
        multifloor_smoke.venue,
        multifloor_smoke.radio_maps,
        lambda floor: TopoACDifferentiator(
            entities=floor.plan.entities
        ),
        estimator_factory=WKNNEstimator,
    )
    return service


def bump_floor_counters(tracking, n=3):
    """Simulate routing traffic through the same handles the
    service's transition path mutates."""
    for name in TrackingService._FLOOR_COUNTERS:
        tracking.metrics.counter(name).add(n)


def floor_counts(tracking):
    stats = tracking.stats
    return (
        stats.floor_switches,
        stats.floor_rejections,
        stats.floor_reanchors,
    )


def test_first_registration_never_resets(
    floor_service, multifloor_smoke
):
    tracking = TrackingService(floor_service)
    bump_floor_counters(tracking)
    tracking.register_floors(multifloor_smoke.venue)
    assert floor_counts(tracking) == (3, 3, 3)


def test_reregistration_resets_by_default(
    floor_service, multifloor_smoke
):
    tracking = TrackingService(floor_service)
    tracking.register_floors(multifloor_smoke.venue)
    bump_floor_counters(tracking)
    tracking._c_steps.add(5)
    assert floor_counts(tracking) == (3, 3, 3)
    tracking.register_floors(multifloor_smoke.venue)
    assert floor_counts(tracking) == (0, 0, 0)
    # Only the floor counters re-baseline — the rest survive.
    assert tracking.stats.steps == 5


def test_reregistration_opt_out_keeps_counters(
    floor_service, multifloor_smoke
):
    tracking = TrackingService(floor_service)
    tracking.register_floors(multifloor_smoke.venue)
    bump_floor_counters(tracking)
    tracking.register_floors(
        multifloor_smoke.venue, reset_floor_stats=False
    )
    assert floor_counts(tracking) == (3, 3, 3)


def test_manual_reset_floor_stats(floor_service, multifloor_smoke):
    tracking = TrackingService(floor_service)
    tracking.register_floors(multifloor_smoke.venue)
    bump_floor_counters(tracking)
    tracking._c_steps.add(2)
    tracking.reset_floor_stats()
    assert floor_counts(tracking) == (0, 0, 0)
    assert tracking.stats.steps == 2


def test_reset_stats_spares_shared_registry(floor_service):
    """reset_stats zeroes every tracking.* counter but leaves other
    metrics on a shared telemetry registry alone."""
    telemetry = Telemetry(metrics=MetricsRegistry(), sample_every=0)
    foreign = telemetry.metrics.counter("serving.queries")
    foreign.add(7)
    tracking = TrackingService(floor_service, telemetry=telemetry)
    bump_floor_counters(tracking)
    tracking._c_steps.add(4)
    tracking.reset_stats()
    assert floor_counts(tracking) == (0, 0, 0)
    assert tracking.stats.steps == 0
    assert foreign.value == 7.0
