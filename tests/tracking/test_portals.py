"""Portal-aware floor transitions: PortalMap lookups and the tracking
service's hand-off / hysteresis / re-anchor protocol."""

import numpy as np
import pytest

from repro.core import TopoACDifferentiator
from repro.exceptions import TrackingError
from repro.geometry import Polygon
from repro.positioning import WKNNEstimator
from repro.serving import PositioningService, deploy_floors
from repro.tracking import PortalMap, TrackingService
from repro.venue import Portal

lobby = Polygon.rectangle(0, 0, 3, 3)
stairwell = Polygon.rectangle(10, 0, 13, 3)

lift = Portal(
    name="lift",
    kind="elevator",
    floor_a="f1",
    floor_b="f2",
    point_a=(1.0, 1.0),
    point_b=(2.0, 2.0),
    footprint_a=lobby,
    footprint_b=lobby,
)
stairs = Portal(
    name="stairs",
    kind="stairs",
    floor_a="f1",
    floor_b="f2",
    point_a=(11.0, 1.0),
    point_b=(11.0, 1.0),
    footprint_a=stairwell,
    footprint_b=stairwell,
)


class TestPortalMap:
    def test_indexing(self):
        pm = PortalMap([lift, stairs])
        assert len(pm) == 2
        assert pm.connects("f1", "f2")
        assert pm.connects("f2", "f1")
        assert not pm.connects("f1", "f3")
        assert len(pm.portals_between("f1", "f2")) == 2
        assert pm.portals_between("f1", "f3") == []

    def test_handoff_returns_exit_on_target_floor(self):
        pm = PortalMap([lift])
        exit_xy = pm.handoff("f1", "f2", (1.2, 1.0), radius=2.0)
        np.testing.assert_allclose(exit_xy, [2.0, 2.0])
        # The reverse direction exits on f1's side.
        back = pm.handoff("f2", "f1", (2.0, 2.0), radius=2.0)
        np.testing.assert_allclose(back, [1.0, 1.0])

    def test_handoff_outside_radius_is_none(self):
        pm = PortalMap([lift])
        assert pm.handoff("f1", "f2", (6.0, 1.0), radius=2.0) is None

    def test_handoff_picks_closest_portal(self):
        pm = PortalMap([lift, stairs])
        near_stairs = pm.handoff(
            "f1", "f2", (9.0, 1.0), radius=20.0
        )
        np.testing.assert_allclose(near_stairs, [11.0, 1.0])

    def test_handoff_unknown_pair_is_none(self):
        pm = PortalMap([lift])
        assert pm.handoff("f1", "f3", (1.0, 1.0), radius=5.0) is None

    def test_arrival_checks_the_target_side(self):
        pm = PortalMap([lift])
        # A fix near the f2 exit: arrival fires even though the same
        # point is out of reach of the f1 entry test.
        exit_xy = pm.arrival("f1", "f2", (2.4, 2.0), radius=1.0)
        np.testing.assert_allclose(exit_xy, [2.0, 2.0])
        assert pm.handoff("f1", "f2", (2.4, 2.0), radius=1.0) is None
        assert (
            pm.arrival("f1", "f2", (6.0, 6.0), radius=1.0) is None
        )

    def test_from_venue(self, multifloor_smoke):
        pm = PortalMap.from_venue(multifloor_smoke.venue)
        assert len(pm) == len(multifloor_smoke.venue.portals)
        assert pm.connects("f1", "f2")


@pytest.fixture(scope="module")
def floor_positioning(multifloor_smoke):
    service = PositioningService(cache_size=0)
    deploy_floors(
        service,
        multifloor_smoke.venue,
        multifloor_smoke.radio_maps,
        lambda floor: TopoACDifferentiator(
            entities=floor.plan.entities
        ),
        estimator_factory=WKNNEstimator,
    )
    return service


def scan_at(dataset, floor_id, xy, seed):
    rng = np.random.default_rng(seed)
    return dataset.channels[floor_id].measure(
        np.asarray(xy, dtype=float), rng
    ).rssi


class TestRegisterFloors:
    def test_parameter_validation(
        self, floor_positioning, multifloor_smoke
    ):
        tracking = TrackingService(floor_positioning)
        with pytest.raises(TrackingError, match="portal_radius"):
            tracking.register_floors(
                multifloor_smoke.venue, portal_radius=0.0
            )
        with pytest.raises(TrackingError, match="reanchor_after"):
            tracking.register_floors(
                multifloor_smoke.venue, reanchor_after=0
            )

    def test_sessions_get_floors(
        self, floor_positioning, multifloor_smoke
    ):
        tracking = TrackingService(floor_positioning)
        tracking.register_floors(multifloor_smoke.venue)
        rp1 = multifloor_smoke.venue.floor("f1").reference_points[0]
        rp2 = multifloor_smoke.venue.floor("f2").reference_points[0]
        sids = tracking.start_batch(
            ["kaide", "kaide"],
            [
                scan_at(multifloor_smoke, "f1", rp1, seed=1),
                scan_at(multifloor_smoke, "f2", rp2, seed=2),
            ],
            times=[0.0, 0.0],
        )
        batch = tracking.step_batch(
            sids,
            [
                scan_at(multifloor_smoke, "f1", rp1, seed=3),
                scan_at(multifloor_smoke, "f2", rp2, seed=4),
            ],
            times=[1.0, 1.0],
        )
        assert batch.floors == ("f1", "f2")
        assert batch.fix(0).floor == "f1"
        assert tracking.end(sids[0]).floor == "f1"
        assert tracking.end(sids[1]).floor == "f2"

    def test_flat_venue_has_no_floor_column(
        self, multifloor_smoke, kaide_smoke
    ):
        """A service with no stacked venues is byte-for-byte the
        pre-floor world: no floors tuple, fix.floor None."""
        service = PositioningService(cache_size=0)
        service.deploy(
            "kaide",
            kaide_smoke.radio_map,
            TopoACDifferentiator(
                entities=kaide_smoke.venue.plan.entities
            ),
            estimator=WKNNEstimator(),
        )
        tracking = TrackingService(service)
        rng = np.random.default_rng(0)
        scan = kaide_smoke.channel.measure(
            kaide_smoke.venue.reference_points[0], rng
        ).rssi
        sid = tracking.start("kaide", scan, t=0.0)
        fix = tracking.step(sid, scan, t=1.0)
        assert fix.floor is None


class TestTransitions:
    def _tracking(self, positioning, venue, **kwargs):
        tracking = TrackingService(positioning)
        tracking.register_floors(venue, **kwargs)
        return tracking

    def test_portal_handoff(self, floor_positioning, multifloor_smoke):
        """A device rides the elevator: the track changes banks at the
        portal instead of failing the gate."""
        venue = multifloor_smoke.venue
        tracking = self._tracking(
            floor_positioning, venue, portal_radius=8.0
        )
        portal = venue.portals_between("f1", "f2")[0]
        entry = portal.endpoint("f1")
        sid = tracking.start(
            "kaide",
            scan_at(multifloor_smoke, "f1", entry, seed=11),
            t=0.0,
        )
        fix = tracking.step(
            sid,
            scan_at(multifloor_smoke, "f2", portal.endpoint("f2"), seed=12),
            t=portal.traversal_seconds,
        )
        assert fix.floor == "f2"
        stats = tracking.stats
        assert stats.floor_switches == 1
        assert stats.floor_rejections == 0
        assert stats.floor_reanchors == 0
        assert tracking.end(sid).floor == "f2"
        assert "floors switched=1" in stats.render()

    def test_isolated_misclassification_rejected(
        self, floor_positioning, multifloor_smoke
    ):
        """Off-floor scans with no portal in reach coast the track on
        its floor; a same-floor scan clears the suspicion."""
        venue = multifloor_smoke.venue
        tracking = self._tracking(
            floor_positioning,
            venue,
            portal_radius=0.05,
            reanchor_after=3,
        )
        rp = venue.floor("f1").reference_points[3]
        sid = tracking.start(
            "kaide",
            scan_at(multifloor_smoke, "f1", rp, seed=21),
            t=0.0,
        )
        fix = tracking.step(
            sid,
            scan_at(multifloor_smoke, "f2", rp, seed=22),
            t=1.0,
        )
        assert fix.floor == "f1"
        assert not fix.accepted
        assert tracking.stats.floor_rejections == 1
        # Back on f1: the track keeps its floor and accepts again.
        fix = tracking.step(
            sid,
            scan_at(multifloor_smoke, "f1", rp, seed=23),
            t=2.0,
        )
        assert fix.floor == "f1"
        assert tracking.stats.floor_switches == 0
        assert tracking.stats.floor_reanchors == 0

    def test_persistent_off_floor_reanchors(
        self, floor_positioning, multifloor_smoke
    ):
        """Consecutive off-floor scans past the hysteresis force a
        re-anchor on the scans' floor (the classifier outvotes the
        motion model, portal or not)."""
        venue = multifloor_smoke.venue
        tracking = self._tracking(
            floor_positioning,
            venue,
            portal_radius=0.05,
            reanchor_after=2,
        )
        rp = venue.floor("f1").reference_points[3]
        sid = tracking.start(
            "kaide",
            scan_at(multifloor_smoke, "f1", rp, seed=31),
            t=0.0,
        )
        tracking.step(
            sid,
            scan_at(multifloor_smoke, "f2", rp, seed=32),
            t=1.0,
        )
        fix = tracking.step(
            sid,
            scan_at(multifloor_smoke, "f2", rp, seed=33),
            t=2.0,
        )
        assert fix.floor == "f2"
        stats = tracking.stats
        assert stats.floor_rejections == 1
        assert stats.floor_reanchors == 1
        assert stats.floor_switches == 0
        np.testing.assert_allclose(fix.position, fix.raw)

    def test_mixed_floor_batch_steps_every_bank(
        self, floor_positioning, multifloor_smoke
    ):
        venue = multifloor_smoke.venue
        tracking = self._tracking(floor_positioning, venue)
        rp1 = venue.floor("f1").reference_points[1]
        rp2 = venue.floor("f2").reference_points[1]
        sids = tracking.start_batch(
            ["kaide"] * 4,
            [
                scan_at(multifloor_smoke, "f1", rp1, seed=41),
                scan_at(multifloor_smoke, "f2", rp2, seed=42),
                scan_at(multifloor_smoke, "f1", rp1, seed=43),
                scan_at(multifloor_smoke, "f2", rp2, seed=44),
            ],
            times=[0.0] * 4,
        )
        batch = tracking.step_batch(
            sids,
            [
                scan_at(multifloor_smoke, "f1", rp1, seed=45),
                scan_at(multifloor_smoke, "f2", rp2, seed=46),
                scan_at(multifloor_smoke, "f1", rp1, seed=47),
                scan_at(multifloor_smoke, "f2", rp2, seed=48),
            ],
            times=[1.0] * 4,
        )
        assert batch.floors == ("f1", "f2", "f1", "f2")
        assert np.isfinite(batch.positions).all()
        for sid in sids:
            assert tracking.position(sid).shape == (2,)
