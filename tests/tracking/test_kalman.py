"""Tracker math: CV-Kalman kernels, the bank, and the geometry
constraint — including the step/step_batch bit-parity contract."""

import numpy as np
import pytest

from repro.exceptions import TrackingError
from repro.geometry import MultiPolygon, Polygon
from repro.tracking import (
    MotionConfig,
    Tracker,
    TrackerBank,
    WalkableConstraint,
    kalman_predict,
    kalman_update,
)


def make_states(n, rng):
    x = rng.normal(0, 5, (n, 4))
    a = rng.normal(0, 1, (n, 4, 4))
    P = a @ a.transpose(0, 2, 1) + 0.5 * np.eye(4)
    return x, P


class TestKernels:
    def test_predict_moves_position_by_velocity(self):
        x = np.array([[1.0, 2.0, 0.5, -1.0]])
        P = np.eye(4)[None]
        x2, P2 = kalman_predict(x, P, np.array([2.0]), q=0.1)
        np.testing.assert_allclose(x2[0], [2.0, 0.0, 0.5, -1.0])

    def test_predict_inflates_covariance(self, rng):
        # Velocity variance always grows by q*dt; with no
        # position-velocity coupling the position variance grows too.
        x = rng.normal(0, 5, (5, 4))
        P = np.broadcast_to(np.diag([4.0, 4.0, 1.0, 1.0]), (5, 4, 4)).copy()
        _, P2 = kalman_predict(x, P, np.full(5, 1.0), q=0.3)
        assert (P2[:, 2, 2] > P[:, 2, 2]).all()
        assert (P2[:, 3, 3] > P[:, 3, 3]).all()
        assert (P2[:, 0, 0] > P[:, 0, 0]).all()
        assert (P2[:, 1, 1] > P[:, 1, 1]).all()

    def test_zero_dt_is_identity_prediction(self, rng):
        x, P = make_states(3, rng)
        x2, P2 = kalman_predict(x, P, np.zeros(3), q=0.3)
        np.testing.assert_array_equal(x2, x)
        np.testing.assert_allclose(P2, P)

    def test_update_pulls_towards_measurement(self):
        x = np.array([[0.0, 0.0, 0.0, 0.0]])
        P = (4.0 * np.eye(4))[None]
        z = np.array([[2.0, -2.0]])
        x2, P2, accepted = kalman_update(x, P, z, r=1.0)
        assert accepted.all()
        assert 0 < x2[0, 0] < 2.0 and -2.0 < x2[0, 1] < 0
        # Fusing a measurement reduces position uncertainty.
        assert P2[0, 0, 0] < P[0, 0, 0]
        assert P2[0, 1, 1] < P[0, 1, 1]

    def test_update_matches_generic_linalg(self, rng):
        """The closed-form 2x2 path equals the textbook matrix form."""
        x, P = make_states(4, rng)
        z = rng.normal(0, 5, (4, 2))
        r = 1.7
        x2, P2, _ = kalman_update(x, P, z, r=r)
        H = np.zeros((2, 4))
        H[0, 0] = H[1, 1] = 1.0
        for i in range(4):
            S = H @ P[i] @ H.T + r * r * np.eye(2)
            K = P[i] @ H.T @ np.linalg.inv(S)
            xe = x[i] + K @ (z[i] - H @ x[i])
            Pe = P[i] - K @ H @ P[i]
            np.testing.assert_allclose(x2[i], xe, atol=1e-9)
            np.testing.assert_allclose(P2[i], Pe, atol=1e-9)

    def test_gate_rejects_outlier_keeps_inliers(self):
        x = np.zeros((2, 4))
        P = np.broadcast_to(np.eye(4), (2, 4, 4)).copy()
        z = np.array([[0.5, 0.5], [50.0, 50.0]])
        x2, P2, accepted = kalman_update(x, P, z, r=1.0, gate_sigma=3.0)
        assert accepted.tolist() == [True, False]
        # The gated row coasts: state and covariance unchanged.
        np.testing.assert_array_equal(x2[1], x[1])
        np.testing.assert_array_equal(P2[1], P[1])
        assert not np.array_equal(x2[0], x[0])


class TestMotionConfig:
    @pytest.mark.parametrize(
        "bad",
        [
            {"process_noise": 0.0},
            {"measurement_sigma": -1.0},
            {"init_position_sigma": 0.0},
            {"init_velocity_sigma": 0.0},
            {"gate_sigma": -0.1},
            {"max_dt": 0.0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(TrackingError):
            MotionConfig(**bad)


class TestBitParity:
    """step (batch of one) vs step_batch (fleet) are bit-identical —
    the contract that lets single-session and batched serving share
    one set of kernels."""

    def test_step_equals_step_batch_bitwise(self, rng):
        cfg = MotionConfig(gate_sigma=3.0)
        walkable = WalkableConstraint(
            Polygon.rectangle(0.0, 0.0, 40.0, 40.0)
        )
        solo = TrackerBank(cfg, walkable, capacity=1)
        fleet = TrackerBank(cfg, walkable, capacity=128)
        starts = rng.uniform(5, 35, (64, 2))
        solo_slots = [solo.start(p, 0.0) for p in starts]
        fleet_slots = [fleet.start(p, 0.0) for p in starts]
        for k in range(1, 6):
            fixes = rng.uniform(-5, 45, (64, 2))  # some out of area
            times = np.full(64, float(k)) + rng.uniform(0, 0.3, 64)
            solo_out = [
                solo.step(solo_slots[i], fixes[i], times[i])
                for i in range(64)
            ]
            fleet_out = fleet.step_batch(fleet_slots, fixes, times)
            for i in range(64):
                assert np.array_equal(
                    solo_out[i].positions[0], fleet_out.positions[i]
                )
                assert np.array_equal(
                    solo_out[i].velocities[0], fleet_out.velocities[i]
                )
                assert solo_out[i].accepted[0] == fleet_out.accepted[i]
                assert solo_out[i].clamped[0] == fleet_out.clamped[i]
        for a, b in zip(solo_slots, fleet_slots):
            assert np.array_equal(solo._x[a], fleet._x[b])
            assert np.array_equal(solo._P[a], fleet._P[b])

    def test_kernels_batch_of_one_vs_many(self, rng):
        x, P = make_states(16, rng)
        dt = rng.uniform(0, 3, 16)
        z = rng.normal(0, 5, (16, 2))
        xb, Pb = kalman_predict(x, P, dt, q=0.2)
        xb2, Pb2, accb = kalman_update(xb, Pb, z, r=2.0, gate_sigma=3.0)
        for i in range(16):
            x1, P1 = kalman_predict(
                x[i : i + 1], P[i : i + 1], dt[i : i + 1], q=0.2
            )
            x12, P12, acc1 = kalman_update(
                x1, P1, z[i : i + 1], r=2.0, gate_sigma=3.0
            )
            assert np.array_equal(x12[0], xb2[i])
            assert np.array_equal(P12[0], Pb2[i])
            assert acc1[0] == accb[i]


class TestTrackerBank:
    def test_tracks_a_noisy_straight_walk(self, rng):
        truth = np.stack(
            [np.linspace(0, 30, 60), np.zeros(60)], axis=1
        )
        fixes = truth + rng.normal(0, 2.0, truth.shape)
        tracker = Tracker(fixes[0], t=0.0)
        tracked = [fixes[0]]
        for k in range(1, 60):
            tracked.append(
                tracker.step(fixes[k], float(k)).positions[0]
            )
        tracked = np.stack(tracked)
        raw_rmse = np.sqrt(((fixes - truth) ** 2).sum(1).mean())
        trk_rmse = np.sqrt(((tracked - truth) ** 2).sum(1).mean())
        assert trk_rmse < raw_rmse

    def test_velocity_estimate_converges(self):
        tracker = Tracker(np.zeros(2), t=0.0)
        for k in range(1, 20):
            tracker.step(np.array([1.0 * k, 0.0]), float(k))
        vx, vy = tracker.velocity
        assert vx == pytest.approx(1.0, abs=0.2)
        assert vy == pytest.approx(0.0, abs=0.2)

    def test_slot_recycling_and_growth(self):
        bank = TrackerBank(capacity=2)
        a = bank.start(np.zeros(2), 0.0)
        b = bank.start(np.ones(2), 0.0)
        assert len(bank) == 2
        bank.release(a)
        c = bank.start(np.full(2, 3.0), 1.0)
        assert c == a  # freed slot reused
        d = bank.start(np.full(2, 4.0), 1.0)  # forces growth
        assert bank.capacity > 2
        assert len(bank) == 3
        np.testing.assert_array_equal(bank.position(b), np.ones(2))
        np.testing.assert_array_equal(bank.position(d), np.full(2, 4.0))

    def test_dead_slot_rejected(self):
        bank = TrackerBank(capacity=2)
        slot = bank.start(np.zeros(2), 0.0)
        bank.release(slot)
        with pytest.raises(TrackingError, match="no live tracker"):
            bank.step(slot, np.zeros(2), 1.0)
        with pytest.raises(TrackingError, match="no live tracker"):
            bank.position(slot)

    def test_duplicate_slots_rejected(self):
        bank = TrackerBank(capacity=4)
        slot = bank.start(np.zeros(2), 0.0)
        with pytest.raises(TrackingError, match="unique"):
            bank.step_batch(
                [slot, slot], np.zeros((2, 2)), np.ones(2)
            )

    def test_non_finite_fix_rejected(self):
        bank = TrackerBank(capacity=1)
        slot = bank.start(np.zeros(2), 0.0)
        with pytest.raises(TrackingError, match="finite"):
            bank.step(slot, np.array([np.nan, 0.0]), 1.0)

    def test_max_dt_clamps_stale_gaps(self):
        cfg = MotionConfig(max_dt=5.0, gate_sigma=0.0)
        a = TrackerBank(cfg, capacity=1)
        b = TrackerBank(cfg, capacity=1)
        sa = a.start(np.zeros(2), 0.0)
        sb = b.start(np.zeros(2), 0.0)
        fix = np.array([3.0, 3.0])
        ra = a.step(sa, fix, 5.0)
        rb = b.step(sb, fix, 5000.0)  # clamps to the same 5s gap
        np.testing.assert_array_equal(ra.positions, rb.positions)


class TestWalkableConstraint:
    def test_clamp_pulls_to_boundary(self):
        constraint = WalkableConstraint(
            Polygon.rectangle(0.0, 0.0, 10.0, 10.0), mode="clamp"
        )
        bank = TrackerBank(
            MotionConfig(gate_sigma=0.0), constraint, capacity=1
        )
        slot = bank.start(np.array([9.0, 5.0]), 0.0)
        result = bank.step(slot, np.array([30.0, 5.0]), 1.0)
        assert result.clamped[0]
        x, y = result.positions[0]
        assert x == pytest.approx(10.0)
        assert 0.0 <= y <= 10.0

    def test_reject_reverts_to_prediction(self):
        constraint = WalkableConstraint(
            Polygon.rectangle(0.0, 0.0, 10.0, 10.0), mode="reject"
        )
        bank = TrackerBank(
            MotionConfig(gate_sigma=0.0), constraint, capacity=1
        )
        slot = bank.start(np.array([5.0, 5.0]), 0.0)
        result = bank.step(slot, np.array([30.0, 5.0]), 1.0)
        assert not result.accepted[0]
        # Prediction from an at-rest start stays at the start.
        np.testing.assert_allclose(
            result.positions[0], [5.0, 5.0], atol=1e-9
        )

    def test_inside_positions_untouched(self):
        constraint = WalkableConstraint(
            MultiPolygon(
                [
                    Polygon.rectangle(0.0, 0.0, 10.0, 10.0),
                    Polygon.rectangle(20.0, 0.0, 30.0, 10.0),
                ]
            )
        )
        bank = TrackerBank(
            MotionConfig(gate_sigma=0.0), constraint, capacity=2
        )
        s1 = bank.start(np.array([5.0, 5.0]), 0.0)
        s2 = bank.start(np.array([25.0, 5.0]), 0.0)
        result = bank.step_batch(
            [s1, s2],
            np.array([[6.0, 5.0], [26.0, 5.0]]),
            np.ones(2),
        )
        assert not result.clamped.any()
        assert result.accepted.all()

    def test_nearest_projects_onto_edges(self):
        constraint = WalkableConstraint(
            Polygon.rectangle(0.0, 0.0, 10.0, 10.0)
        )
        near = constraint.nearest(
            np.array([[5.0, -3.0], [12.0, 12.0], [-1.0, 5.0]])
        )
        np.testing.assert_allclose(
            near, [[5.0, 0.0], [10.0, 10.0], [0.0, 5.0]]
        )

    def test_bad_mode_rejected(self):
        with pytest.raises(TrackingError, match="mode"):
            WalkableConstraint(
                Polygon.rectangle(0, 0, 1, 1), mode="teleport"
            )

    def test_empty_multipolygon_rejected(self):
        with pytest.raises(TrackingError, match="non-empty"):
            WalkableConstraint(MultiPolygon([]))
