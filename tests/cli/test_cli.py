"""CLI entry point."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_known_experiments_registered(self):
        for name in ("table5", "table6", "fig12", "fig18", "table8"):
            assert name in EXPERIMENTS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table5"])
        assert args.preset == "smoke"

    def test_serve_bench_registered(self):
        assert "serve-bench" in EXPERIMENTS
        args = build_parser().parse_args(["serve-bench"])
        assert args.experiment == "serve-bench"

    def test_pipeline_commands_registered(self):
        args = build_parser().parse_args(
            ["train", "--out", "x.npz", "--venue", "longhu"]
        )
        assert args.experiment == "train"
        assert args.venue == "longhu"
        args = build_parser().parse_args(
            ["impute", "--model", "x.npz", "--out", "y.npz"]
        )
        assert args.experiment == "impute"

    def test_pipeline_defaults(self):
        args = build_parser().parse_args(["train", "--out", "x.npz"])
        assert args.venue == "kaide"
        assert args.estimator == "wknn"
        assert args.mean_fill is False
        assert args.epochs is None

    def test_load_test_registered_with_defaults(self):
        args = build_parser().parse_args(["load-test"])
        assert args.experiment == "load-test"
        assert args.threads == 8
        assert args.max_batch == 256
        assert args.duplicate_rate is None

    def test_load_test_flags(self):
        args = build_parser().parse_args(
            [
                "load-test",
                "--threads",
                "4",
                "--requests",
                "64",
                "--max-delay-ms",
                "1.5",
                "--duplicate-rate",
                "0.5",
            ]
        )
        assert args.threads == 4
        assert args.requests == 64
        assert args.max_delay_ms == 1.5
        assert args.duplicate_rate == 0.5

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_invalid_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table5", "--preset", "huge"])


class TestMain:
    def test_runs_light_experiment(self, capsys):
        assert main(["table5", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "kaide" in out

    def test_runs_fig5(self, capsys):
        assert main(["fig5", "--preset", "smoke"]) == 0
        assert "Fig. 5" in capsys.readouterr().out

    def test_runs_serve_bench(self, capsys):
        assert main(["serve-bench", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Serving bench" in out
        assert "speedup" in out

    def test_runs_load_test(self, capsys):
        assert (
            main(
                [
                    "load-test",
                    "--preset",
                    "smoke",
                    "--threads",
                    "2",
                    "--requests",
                    "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Load test" in out
        assert "p50=" in out
        assert "single-caller batch-256" in out

    def test_load_test_rejects_bad_flags(self):
        with pytest.raises(SystemExit):
            main(["load-test", "--threads", "0"])
        with pytest.raises(SystemExit):
            main(["load-test", "--duplicate-rate", "1.5"])
