"""CLI entry point."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_known_experiments_registered(self):
        for name in ("table5", "table6", "fig12", "fig18", "table8"):
            assert name in EXPERIMENTS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table5"])
        assert args.preset == "smoke"

    def test_serve_bench_registered(self):
        assert "serve-bench" in EXPERIMENTS
        args = build_parser().parse_args(["serve-bench"])
        assert args.experiment == "serve-bench"
        assert args.spatial_index is True

    def test_serve_bench_spatial_index_flags(self):
        args = build_parser().parse_args(
            ["serve-bench", "--no-spatial-index"]
        )
        assert args.spatial_index is False
        args = build_parser().parse_args(
            ["serve-bench", "--spatial-index"]
        )
        assert args.spatial_index is True

    def test_pipeline_commands_registered(self):
        args = build_parser().parse_args(
            ["train", "--out", "x.npz", "--venue", "longhu"]
        )
        assert args.experiment == "train"
        assert args.venue == "longhu"
        args = build_parser().parse_args(
            ["impute", "--model", "x.npz", "--out", "y.npz"]
        )
        assert args.experiment == "impute"

    def test_pipeline_defaults(self):
        args = build_parser().parse_args(["train", "--out", "x.npz"])
        assert args.venue == "kaide"
        assert args.estimator == "wknn"
        assert args.mean_fill is False
        assert args.epochs is None

    def test_load_test_registered_with_defaults(self):
        args = build_parser().parse_args(["load-test"])
        assert args.experiment == "load-test"
        assert args.threads == 8
        assert args.max_batch == 256
        assert args.duplicate_rate is None

    def test_load_test_flags(self):
        args = build_parser().parse_args(
            [
                "load-test",
                "--threads",
                "4",
                "--requests",
                "64",
                "--max-delay-ms",
                "1.5",
                "--duplicate-rate",
                "0.5",
            ]
        )
        assert args.threads == 4
        assert args.requests == 64
        assert args.max_delay_ms == 1.5
        assert args.duplicate_rate == 0.5

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_invalid_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table5", "--preset", "huge"])


class TestMain:
    def test_runs_light_experiment(self, capsys):
        assert main(["table5", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "kaide" in out

    def test_runs_fig5(self, capsys):
        assert main(["fig5", "--preset", "smoke"]) == 0
        assert "Fig. 5" in capsys.readouterr().out

    def test_runs_serve_bench(self, capsys):
        assert main(["serve-bench", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Serving bench" in out
        assert "speedup" in out

    def test_runs_load_test(self, capsys):
        assert (
            main(
                [
                    "load-test",
                    "--preset",
                    "smoke",
                    "--threads",
                    "2",
                    "--requests",
                    "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Load test" in out
        assert "p50=" in out
        assert "single-caller batch-256" in out

    def test_load_test_rejects_bad_flags(self):
        with pytest.raises(SystemExit):
            main(["load-test", "--threads", "0"])
        with pytest.raises(SystemExit):
            main(["load-test", "--duplicate-rate", "1.5"])


class TestIngestStage:
    def test_parser_flags(self):
        args = build_parser().parse_args(
            [
                "ingest",
                "--out",
                "d.npz",
                "--base",
                "shard.npz",
                "--new-passes",
                "2",
                "--apply",
                "--seed",
                "42",
            ]
        )
        assert args.experiment == "ingest"
        assert args.base == "shard.npz"
        assert args.new_passes == 2
        assert args.apply is True
        assert args.seed == 42

    def test_requires_out(self):
        with pytest.raises(SystemExit):
            main(["ingest", "--preset", "smoke"])

    def test_rejects_bad_new_passes(self):
        with pytest.raises(SystemExit):
            main(["ingest", "--out", "d.npz", "--new-passes", "0"])

    def test_writes_chained_delta(self, tmp_path, capsys):
        base = tmp_path / "base.npz"
        assert (
            main(
                [
                    "train",
                    "--preset",
                    "smoke",
                    "--mean-fill",
                    "--out",
                    str(base),
                ]
            )
            == 0
        )
        delta = tmp_path / "delta.npz"
        assert (
            main(
                [
                    "ingest",
                    "--preset",
                    "smoke",
                    "--base",
                    str(base),
                    "--out",
                    str(delta),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "lineage" in out
        from repro.artifacts import read_manifest
        from repro.ingest import load_delta

        parent = str(read_manifest(base)["content_hash"])
        loaded, config = load_delta(delta, parent_hash=parent)
        assert loaded.n_rows > 0
        assert config["sequence"] == 0

        # Chaining a second ingest on the first delta resumes the
        # sequence numbering, so the whole chain verifies.
        delta2 = tmp_path / "delta2.npz"
        assert (
            main(
                [
                    "ingest",
                    "--preset",
                    "smoke",
                    "--base",
                    str(delta),
                    "--out",
                    str(delta2),
                    "--seed",
                    "9",
                ]
            )
            == 0
        )
        from repro.ingest import verify_chain

        configs = verify_chain(base, [delta, delta2])
        assert [c["sequence"] for c in configs] == [0, 1]
        # The second drop's paths continue past the first's — a
        # collision would make delta2 replace delta1's records.
        d1, _ = load_delta(delta)
        d2, _ = load_delta(delta2)
        assert not set(d1.path_ids.tolist()) & set(
            d2.path_ids.tolist()
        )

    def test_apply_reports_hot_update(self, tmp_path, capsys):
        delta = tmp_path / "delta.npz"
        assert (
            main(
                [
                    "ingest",
                    "--preset",
                    "smoke",
                    "--out",
                    str(delta),
                    "--apply",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "applied delta to 'kaide'" in out
        assert "epoch 1" in out

    def test_missing_base_is_user_error(self, tmp_path, capsys):
        assert (
            main(
                [
                    "ingest",
                    "--preset",
                    "smoke",
                    "--base",
                    str(tmp_path / "nope.npz"),
                    "--out",
                    str(tmp_path / "d.npz"),
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err


class TestLoadTestSeedAndDrift:
    def test_parser_accepts_seed_and_drift(self):
        args = build_parser().parse_args(
            ["load-test", "--seed", "7", "--drift"]
        )
        assert args.seed == 7
        assert args.drift is True
        args = build_parser().parse_args(["load-test"])
        assert args.seed is None
        assert args.drift is False

    def test_seed_threads_through_to_run(self, monkeypatch, capsys):
        captured = {}

        def fake_run(config, **kwargs):
            captured.update(kwargs)
            from repro.experiments.base import ExperimentResult

            return ExperimentResult(
                experiment_id="Load test", rendered="ok", data={}
            )

        from repro.serving import loadgen

        monkeypatch.setattr(loadgen, "run", fake_run)
        assert (
            main(
                [
                    "load-test",
                    "--preset",
                    "smoke",
                    "--seed",
                    "31",
                    "--drift",
                ]
            )
            == 0
        )
        assert captured["seed"] == 31
        assert captured["include_drift"] is True
