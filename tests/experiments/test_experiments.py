"""Experiment harness: light modules run end-to-end on the smoke preset."""

import numpy as np
import pytest

from repro.experiments import (
    PRESETS,
    fig5,
    fig67,
    marshare,
    table5,
)
from repro.experiments.config import default_config
from repro.experiments.reporting import (
    render_ranking_check,
    render_series,
    render_table,
)
from repro.experiments.runner import (
    get_dataset,
    imputer_differentiator,
    make_differentiator,
    make_estimator,
    make_imputer,
    run_pipeline_once,
)
from repro.exceptions import ExperimentError

CFG = PRESETS["smoke"]


class TestRunnerFactories:
    def test_all_differentiators_constructible(self):
        ds = get_dataset("kaide", CFG)
        for name in ("TopoAC", "DasaKM", "ElbowKM", "MAR-only", "MNAR-only"):
            d = make_differentiator(name, ds, CFG)
            assert d.name == name

    def test_all_imputers_constructible(self):
        ds = get_dataset("kaide", CFG)
        for name in (
            "CD", "LI", "SL", "MICE", "MF", "BRITS", "SSGAN",
            "D-BiSIM", "T-BiSIM",
        ):
            make_imputer(name, ds, CFG)

    def test_all_estimators_constructible(self):
        for name in ("KNN", "WKNN", "RF"):
            assert make_estimator(name).name == name

    def test_unknown_names_rejected(self):
        ds = get_dataset("kaide", CFG)
        with pytest.raises(ExperimentError):
            make_differentiator("XKM", ds, CFG)
        with pytest.raises(ExperimentError):
            make_imputer("GPT", ds, CFG)
        with pytest.raises(ExperimentError):
            make_estimator("GPS")

    def test_imputer_differentiator_wiring(self):
        assert imputer_differentiator("D-BiSIM") == "DasaKM"
        assert imputer_differentiator("T-BiSIM") == "TopoAC"
        assert imputer_differentiator("MICE") == "TopoAC"

    def test_run_pipeline_once_multiple_estimators(self):
        ds = get_dataset("kaide", CFG)
        result = run_pipeline_once(
            ds.radio_map,
            make_differentiator("MAR-only", ds, CFG),
            make_imputer("LI", ds, CFG),
            ("KNN", "WKNN"),
            np.random.default_rng(0),
        )
        assert set(result.ape) == {"KNN", "WKNN"}
        assert all(np.isfinite(v) for v in result.ape.values())


class TestLightExperiments:
    def test_table5(self):
        res = table5.run(CFG)
        assert "kaide" in res.rendered
        assert res.data["kaide"].missing_rssi_rate > 0.8

    def test_fig5_locality_holds(self):
        res = fig5.run(CFG)
        for venue in ("kaide", "wanda"):
            assert res.data[venue]["ratio"] < 0.9

    def test_fig67_topoac_never_abnormal(self):
        res = fig67.run(CFG)
        for venue in ("kaide", "wanda"):
            assert res.data[venue]["topoac_abnormal"] == 0

    def test_marshare_bounds(self):
        res = marshare.run(CFG)
        for venue in ("kaide", "wanda"):
            assert 0.0 < res.data[venue]["mar_share"] < 1.0


class TestReporting:
    def test_render_table(self):
        text = render_table(
            "T", ["a", "b"], {"row": [1.0, 2.0]}, unit="m"
        )
        assert "row" in text and "1.00" in text and "unit: m" in text

    def test_render_series(self):
        text = render_series(
            "S", "x", [1, 2], {"m": [0.5, 0.7]}, unit="dBm"
        )
        assert "0.50" in text and "0.70" in text

    def test_ranking_check(self):
        text = render_ranking_check(
            "ordering", ["a", "b"], {"a": 1.0, "b": 2.0}
        )
        assert "HOLDS" in text
        text2 = render_ranking_check(
            "ordering", ["a", "b"], {"a": 3.0, "b": 2.0}
        )
        assert "DIFFERS" in text2

    def test_default_config_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_PRESET", "smoke")
        assert default_config().name == "smoke"
        monkeypatch.setenv("REPRO_EXPERIMENT_PRESET", "bogus")
        with pytest.raises(ExperimentError):
            default_config()
