"""Dataset factory and evaluation splits."""

import numpy as np
import pytest

from repro.datasets import make_dataset, make_evaluation_split
from repro.exceptions import ExperimentError


class TestMakeDataset:
    def test_sparsity_in_paper_band(self, kaide_smoke):
        rate = kaide_smoke.radio_map.missing_rssi_rate
        assert 0.80 <= rate <= 0.97

    def test_truth_available(self, kaide_smoke):
        truth = kaide_smoke.radio_map.truth
        assert truth is not None
        assert truth.missing_type is not None
        assert truth.positions is not None

    def test_truth_consistent_with_observations(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        obs = rm.rssi_observed_mask
        assert (rm.truth.missing_type[obs] == 1).all()

    def test_deterministic(self):
        a = make_dataset("kaide", scale=0.28, seed=9, n_passes=2)
        b = make_dataset("kaide", scale=0.28, seed=9, n_passes=2)
        np.testing.assert_array_equal(
            a.radio_map.fingerprints, b.radio_map.fingerprints
        )
        np.testing.assert_array_equal(a.radio_map.rps, b.radio_map.rps)

    def test_bluetooth_venue(self, longhu_smoke):
        assert longhu_smoke.venue.channel_kind == "bluetooth"
        assert longhu_smoke.radio_map.missing_rssi_rate > 0.8

    def test_more_passes_more_records(self):
        few = make_dataset("kaide", scale=0.28, seed=9, n_passes=1)
        many = make_dataset("kaide", scale=0.28, seed=9, n_passes=3)
        assert many.radio_map.n_records > few.radio_map.n_records


class TestEvaluationSplit:
    def test_fraction_hidden(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        split = make_evaluation_split(
            rm, np.random.default_rng(0), test_fraction=0.2
        )
        n_obs = rm.observed_rp_indices().size
        assert split.test_indices.size == max(1, round(0.2 * n_obs))
        # Hidden in the split copy, intact in the original.
        assert np.isnan(split.radio_map.rps[split.test_indices]).all()
        assert np.isfinite(rm.rps[split.test_indices]).all()

    def test_locations_match_original(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        split = make_evaluation_split(rm, np.random.default_rng(0))
        np.testing.assert_array_equal(
            split.test_locations, rm.rps[split.test_indices]
        )

    def test_invalid_fraction(self, kaide_smoke):
        with pytest.raises(ExperimentError):
            make_evaluation_split(
                kaide_smoke.radio_map,
                np.random.default_rng(0),
                test_fraction=0.0,
            )
