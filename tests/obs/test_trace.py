"""Tracing: deterministic sampling, span trees, cross-thread
activation, slow-query log, and the worker drain payload."""

import threading

from repro.obs import Span, Tracer


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
def test_sampling_is_deterministic_one_in_n():
    tracer = Tracer(sample_every=4)
    decisions = [tracer.sample() for _ in range(12)]
    assert decisions == [True, False, False, False] * 3


def test_sampling_edge_settings():
    assert all(Tracer(sample_every=1).sample() for _ in range(5))
    assert not any(Tracer(sample_every=0).sample() for _ in range(5))
    assert not any(Tracer(sample_every=-3).sample() for _ in range(5))


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------
def test_trace_retains_root_with_children():
    tracer = Tracer(sample_every=1)
    with tracer.trace("root", meta={"venue": "kaide"}) as root:
        with tracer.span("serve"):
            with tracer.span("kernel.gemm"):
                pass
        root.child("kernel.probe", duration=0.001)
    traces = tracer.traces()
    assert len(traces) == 1
    tree = traces[0]
    assert tree.name == "root"
    assert tree.duration > 0.0
    assert tree.stage_names() == {
        "root", "serve", "kernel.gemm", "kernel.probe"
    }
    serve = tree.children[0]
    assert serve.name == "serve"
    assert serve.children[0].name == "kernel.gemm"
    assert serve.children[0].trace_id == tree.trace_id


def test_span_without_active_root_is_noop():
    tracer = Tracer(sample_every=1)
    with tracer.span("orphan") as span:
        assert span is None
    assert tracer.traces() == []


def test_span_to_dict_and_render():
    span = Span("t00000001", "root", meta={"rows": 3})
    span.duration = 0.002
    span.child("stage", duration=0.001)
    d = span.to_dict()
    assert d["trace_id"] == "t00000001"
    assert d["duration_ms"] == 2.0
    assert d["meta"] == {"rows": 3}
    assert d["children"][0]["name"] == "stage"
    rendered = span.render()
    assert "root" in rendered and "stage" in rendered


def test_activate_hands_span_across_threads():
    """The pipeline pattern: the submit thread opens the root, the
    flusher thread serves under it from another thread."""
    tracer = Tracer(sample_every=1)
    root = tracer.start("pipeline.submit")

    def flusher():
        with tracer.activate(root):
            with tracer.span("serve"):
                pass

    t = threading.Thread(target=flusher)
    t.start()
    t.join()
    tracer.finish(root)
    assert root.children[0].name == "serve"
    # The submit thread's own active-span stack was never touched.
    assert tracer.current() is None


def test_trace_ids_are_unique_and_ordered():
    tracer = Tracer(sample_every=1)
    ids = [tracer.start(f"r{i}").trace_id for i in range(3)]
    assert len(set(ids)) == 3
    assert ids == sorted(ids)


# ----------------------------------------------------------------------
# Retention: bounded deques, slow log, drain
# ----------------------------------------------------------------------
def test_retention_is_bounded():
    tracer = Tracer(sample_every=1, keep=4)
    for i in range(10):
        with tracer.trace(f"r{i}"):
            pass
    names = [s.name for s in tracer.traces()]
    assert names == ["r6", "r7", "r8", "r9"]


def test_slow_query_log_threshold():
    tracer = Tracer(sample_every=1, slow_ms=5.0)
    fast = tracer.start("fast")
    fast.duration = 0.001  # 1 ms — under the threshold
    tracer.finish(fast)
    slow = tracer.start("slow")
    slow.duration = 0.050  # 50 ms — over
    tracer.finish(slow)
    assert [s.name for s in tracer.slow_queries()] == ["slow"]
    assert len(tracer.traces()) == 2


def test_drain_ships_dicts_and_clears():
    tracer = Tracer(sample_every=1, slow_ms=0.0)
    with tracer.trace("req"):
        pass
    payload = tracer.drain()
    assert [s["name"] for s in payload["spans"]] == ["req"]
    assert [s["name"] for s in payload["slow"]] == ["req"]
    assert tracer.drain() == {"spans": [], "slow": []}
    assert tracer.traces() == []
