"""Shared percentile helpers: exact and histogram-derived."""

import numpy as np
import pytest

from repro.obs import (
    BUCKET_FACTOR,
    MetricsRegistry,
    histogram_percentiles_ms,
    percentiles_ms,
)


def test_percentiles_ms_exact():
    lat_s = [0.001, 0.002, 0.003, 0.004, 0.100]
    pct = percentiles_ms(lat_s)
    assert set(pct) == {"p50_ms", "p95_ms", "p99_ms"}
    assert pct["p50_ms"] == pytest.approx(3.0)
    assert pct["p95_ms"] == pytest.approx(
        float(np.percentile(1e3 * np.asarray(lat_s), 95))
    )


def test_percentiles_ms_empty_is_zero():
    assert percentiles_ms([]) == {
        "p50_ms": 0.0,
        "p95_ms": 0.0,
        "p99_ms": 0.0,
    }


def test_percentiles_ms_custom_percentiles():
    pct = percentiles_ms([0.010], percentiles=(25, 75))
    assert pct == {"p25_ms": 10.0, "p75_ms": 10.0}


def test_histogram_percentiles_match_exact_within_one_bucket():
    """The acceptance contract: live histogram percentiles stay within
    one multiplicative bucket width of the loadgen-style exact ones."""
    rng = np.random.default_rng(3)
    lat_s = rng.lognormal(mean=-7.0, sigma=0.8, size=8192)
    m = MetricsRegistry()
    h = m.histogram("lat")
    h.record_many(lat_s)
    live = histogram_percentiles_ms(h)
    exact = percentiles_ms(lat_s)
    for key in ("p50_ms", "p95_ms", "p99_ms"):
        # The histogram quotes the bucket's upper edge: at or above
        # the exact value, by at most one bucket factor.
        assert exact[key] <= live[key] <= exact[key] * BUCKET_FACTOR * (
            1.0 + 1e-9
        )
