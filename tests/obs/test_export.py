"""Exporters: JSON / Prometheus rendering and the CI-facing parser."""

import json

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    Telemetry,
    parse_prometheus,
    render_json,
    render_prometheus,
)


@pytest.fixture()
def registry():
    m = MetricsRegistry()
    m.counter("serving.queries").add(42)
    m.counter("worker.requests", worker="3").add(7)
    m.gauge("registry.resident_bytes").set(4096.0)
    h = m.histogram("pipeline.request_seconds", bounds=[0.001, 0.01])
    h.record(0.0005)
    h.record(0.0005)
    h.record(0.5)  # overflow
    return m


def test_render_json_is_deterministic_and_loadable(registry):
    text = render_json(registry.snapshot())
    assert text == render_json(registry.snapshot())
    snap = json.loads(text)
    assert snap["counters"]["serving.queries"] == 42.0
    assert snap["histograms"]["pipeline.request_seconds"][
        "counts"
    ] == [2, 0, 1]


def test_render_prometheus_shapes(registry):
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_serving_queries_total counter" in text
    assert "repro_serving_queries_total 42.0" in text
    assert 'repro_worker_requests_total{worker="3"} 7.0' in text
    assert "# TYPE repro_registry_resident_bytes gauge" in text
    # Cumulative buckets + +Inf + sum/count.
    assert (
        'repro_pipeline_request_seconds_bucket{le="0.001"} 2' in text
    )
    assert (
        'repro_pipeline_request_seconds_bucket{le="0.01"} 2' in text
    )
    assert (
        'repro_pipeline_request_seconds_bucket{le="+Inf"} 3' in text
    )
    assert "repro_pipeline_request_seconds_count 3" in text


def test_prometheus_round_trip_parses(registry):
    samples = parse_prometheus(render_prometheus(registry.snapshot()))
    by_name = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))
    assert by_name["repro_serving_queries_total"] == [("", 42.0)]
    assert by_name["repro_worker_requests_total"] == [
        ('{worker="3"}', 7.0)
    ]
    infs = [
        v
        for labels, v in by_name[
            "repro_pipeline_request_seconds_bucket"
        ]
        if 'le="+Inf"' in labels
    ]
    assert infs == [3.0]


def test_render_prometheus_accepts_telemetry_bundle():
    tel = Telemetry(sample_every=1)
    tel.metrics.counter("serving.queries").add(1)
    with tel.tracer.trace("req"):
        pass
    text = render_prometheus(tel.snapshot())
    assert "repro_serving_queries_total 1.0" in text
    # Spans are JSON-exported, not Prometheus samples.
    assert "req" not in text
    snap = json.loads(render_json(tel.snapshot()))
    assert [s["name"] for s in snap["spans"]] == ["req"]


def test_parse_prometheus_rejects_malformed():
    with pytest.raises(ObservabilityError, match="line 2"):
        parse_prometheus("repro_ok_total 1\nthis is !! not a sample")
    with pytest.raises(ObservabilityError):
        parse_prometheus("repro_bad{unclosed 3")
    # Comments and blanks are fine.
    assert parse_prometheus("# HELP x\n\n# TYPE x counter\n") == []
