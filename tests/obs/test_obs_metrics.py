"""Metric primitives: counters, gauges, streaming histograms, and the
registry's snapshot / drain / merge / reset protocol."""

import threading

import numpy as np
import pytest

from repro.exceptions import ObservabilityError
from repro.obs import (
    BUCKET_FACTOR,
    LATENCY_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
)
from repro.obs.metrics import parse_key, render_key


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_render_parse_key_round_trip():
    key = render_key("worker.requests", {"worker": "3", "zone": "a"})
    assert key == 'worker.requests{worker="3",zone="a"}'
    name, labels = parse_key(key)
    assert name == "worker.requests"
    assert labels == {"worker": "3", "zone": "a"}
    assert parse_key("plain.counter") == ("plain.counter", {})


def test_render_key_sorts_labels():
    a = render_key("m", {"b": "2", "a": "1"})
    b = render_key("m", {"a": "1", "b": "2"})
    assert a == b


# ----------------------------------------------------------------------
# Counter
# ----------------------------------------------------------------------
def test_counter_add_value_reset():
    m = MetricsRegistry()
    c = m.counter("requests")
    assert c.value == 0.0
    c.add()
    c.add(4.0)
    assert c.value == 5.0
    c.reset()
    assert c.value == 0.0
    # The handle survives the reset.
    c.add(2.0)
    assert c.value == 2.0


def test_counter_identity_and_labels():
    m = MetricsRegistry()
    assert m.counter("hits") is m.counter("hits")
    assert m.counter("hits", venue="a") is not m.counter(
        "hits", venue="b"
    )
    assert m.counter("hits", venue="a").value == 0.0


def test_counter_drain_is_delta():
    m = MetricsRegistry()
    c = m.counter("ticks")
    c.add(3)
    assert c.drain() == 3.0
    assert c.drain() == 0.0
    c.add(2)
    assert c.drain() == 2.0
    # drain() does not disturb the cumulative value.
    assert c.value == 5.0


# ----------------------------------------------------------------------
# Gauge
# ----------------------------------------------------------------------
def test_gauge_set_add_set_max():
    m = MetricsRegistry()
    g = m.gauge("resident_bytes")
    g.set(100.0)
    g.add(-40.0)
    assert g.value == 60.0
    g.set_max(50.0)
    assert g.value == 60.0
    g.set_max(75.0)
    assert g.value == 75.0
    g.reset()
    assert g.value == 0.0


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_record_and_derived_count():
    m = MetricsRegistry()
    h = m.histogram("lat", bounds=[1.0, 2.0, 4.0])
    h.record(0.5)
    h.record(1.5)
    h.record(3.0)
    h.record(100.0)  # overflow bucket
    assert h.count == 4
    np.testing.assert_array_equal(h.counts, [1, 1, 1, 1])
    assert h.total == pytest.approx(105.0)


def test_histogram_edge_values_land_in_their_bucket():
    # side="left": a value equal to a bound lands in that bound's
    # bucket (bounds are upper edges).
    m = MetricsRegistry()
    h = m.histogram("edges", bounds=[1.0, 2.0])
    h.record(1.0)
    h.record(2.0)
    np.testing.assert_array_equal(h.counts, [1, 1, 0])


def test_histogram_record_n_and_record_many():
    m = MetricsRegistry()
    h = m.histogram("batch", bounds=[1.0, 2.0])
    h.record_n(0.5, 7)
    h.record_many(np.array([1.5, 1.5, 5.0]))
    h.record_many(np.array([]))
    np.testing.assert_array_equal(h.counts, [7, 2, 1])
    assert h.total == pytest.approx(7 * 0.5 + 2 * 1.5 + 5.0)


def test_histogram_invalid_bounds_raise():
    m = MetricsRegistry()
    with pytest.raises(ObservabilityError, match="increasing"):
        m.histogram("bad", bounds=[1.0, 1.0, 2.0])
    with pytest.raises(ObservabilityError, match="non-empty"):
        m.histogram("empty", bounds=[])


def test_histogram_reset_keeps_handle():
    m = MetricsRegistry()
    h = m.histogram("lat", bounds=[1.0, 2.0])
    h.record(0.5)
    h.reset()
    assert h.count == 0
    assert h.total == 0.0
    h.record(1.5)
    np.testing.assert_array_equal(h.counts, [0, 1, 0])


def test_histogram_drain_and_merge_counts():
    m = MetricsRegistry()
    h = m.histogram("lat", bounds=[1.0, 2.0])
    h.record(0.5)
    delta = h.drain()
    assert delta["counts"] == [1, 0, 0]
    assert h.drain() is None  # nothing new since the last drain
    other = MetricsRegistry().histogram("lat", bounds=[1.0, 2.0])
    other.merge_counts(
        np.asarray(delta["counts"]), float(delta["total"])
    )
    assert other.count == 1
    with pytest.raises(ObservabilityError, match="merge"):
        other.merge_counts(np.zeros(99, dtype=np.int64), 0.0)


def test_latency_buckets_layout():
    # 8 buckets per decade from 1 µs to 10 s.
    assert LATENCY_BUCKETS[0] == pytest.approx(1e-6)
    assert LATENCY_BUCKETS[-1] == pytest.approx(10.0)
    ratios = np.diff(np.log10(np.asarray(LATENCY_BUCKETS)))
    np.testing.assert_allclose(ratios, 1.0 / 8.0)
    assert BUCKET_FACTOR == pytest.approx(10 ** 0.125)


def test_histogram_quantile_semantics():
    bounds = np.array([1.0, 2.0, 4.0])
    assert histogram_quantile(bounds, np.zeros(4), 0.5) == 0.0
    counts = np.array([5, 0, 0, 0])
    assert histogram_quantile(bounds, counts, 0.99) == 1.0
    counts = np.array([1, 1, 1, 0])
    assert histogram_quantile(bounds, counts, 0.5) == 2.0
    # Overflow mass clamps to the top edge.
    counts = np.array([0, 0, 0, 9])
    assert histogram_quantile(bounds, counts, 0.5) == 4.0


def test_default_histogram_quantile_within_one_bucket():
    m = MetricsRegistry()
    h = m.histogram("lat")  # LATENCY_BUCKETS
    rng = np.random.default_rng(7)
    values = rng.lognormal(mean=-6.0, sigma=1.0, size=4096)
    h.record_many(values)
    for q in (0.5, 0.95, 0.99):
        exact = float(np.quantile(values, q))
        live = h.quantile(q)
        # The bucket's upper edge is within one multiplicative bucket
        # width above the exact order statistic.
        assert exact <= live <= exact * BUCKET_FACTOR * 1.0001


# ----------------------------------------------------------------------
# Registry protocol
# ----------------------------------------------------------------------
def test_registry_type_conflict_raises():
    m = MetricsRegistry()
    m.counter("x")
    with pytest.raises(ObservabilityError, match="already registered"):
        m.gauge("x")
    with pytest.raises(ObservabilityError, match="already registered"):
        m.histogram("x")


def test_registry_snapshot_shape():
    m = MetricsRegistry()
    m.counter("c", venue="a").add(2)
    m.gauge("g").set(7.0)
    m.histogram("h", bounds=[1.0]).record(0.5)
    snap = m.snapshot()
    assert snap["counters"] == {'c{venue="a"}': 2.0}
    assert snap["gauges"] == {"g": 7.0}
    assert snap["histograms"]["h"]["counts"] == [1, 0]


def test_registry_drain_merge_round_trip():
    worker = MetricsRegistry()
    worker.counter("worker.requests").add(5)
    worker.gauge("registry.resident_bytes").set(1000.0)
    worker.histogram("lat", bounds=[1.0, 2.0]).record(1.5)

    parent = MetricsRegistry()
    parent.merge(worker.drain(gauge_labels={"worker": "0"}))
    parent.merge(worker.drain(gauge_labels={"worker": "0"}))

    # Counters/histograms shipped deltas: merged once, not twice.
    assert parent.counter("worker.requests").value == 5.0
    assert parent.histogram("lat", bounds=[1.0, 2.0]).count == 1
    # Gauges shipped absolutes under per-source labels.
    assert (
        parent.gauge("registry.resident_bytes", worker="0").value
        == 1000.0
    )

    worker.counter("worker.requests").add(3)
    parent.merge(worker.drain(gauge_labels={"worker": "0"}))
    assert parent.counter("worker.requests").value == 8.0


def test_registry_gauge_relabel_keeps_sources_separate():
    parent = MetricsRegistry()
    for wid, resident in (("0", 100.0), ("1", 250.0)):
        worker = MetricsRegistry()
        worker.gauge("registry.resident_bytes").set(resident)
        parent.merge(worker.drain(gauge_labels={"worker": wid}))
    values = {
        labels["worker"]: metric.value
        for labels, metric in parent.labelled("registry.resident_bytes")
    }
    assert values == {"0": 100.0, "1": 250.0}


def test_registry_reset_zeros_everything_in_place():
    m = MetricsRegistry()
    c = m.counter("c")
    g = m.gauge("g")
    h = m.histogram("h", bounds=[1.0])
    c.add(3)
    g.set(5.0)
    h.record(0.5)
    m.reset()
    assert c.value == 0.0
    assert g.value == 0.0
    assert h.count == 0
    # Same handles keep working.
    c.add(1)
    assert m.counter("c").value == 1.0


# ----------------------------------------------------------------------
# Concurrency: the tear test
# ----------------------------------------------------------------------
def test_histogram_concurrent_writers_never_tear():
    """N writer threads hammer one histogram, each recording K values
    into its own designated bucket, while a reader snapshots
    concurrently.  Every snapshot must be internally consistent:
    per-bucket counts never exceed K, the derived count always equals
    the bucket sum (by construction), and the final counts are exact.
    """
    n_threads, k = 8, 5000
    m = MetricsRegistry()
    # Bucket upper edges 1..n_threads: thread i records value i+0.5
    # so it lands in bucket i exclusively; overflow stays empty.
    h = m.histogram(
        "tear", bounds=[float(i) for i in range(1, n_threads + 1)]
    )
    start = threading.Barrier(n_threads + 1)
    done = threading.Event()

    def writer(i):
        value = i + 0.5
        start.wait()
        for _ in range(k):
            h.record(value)

    torn = []

    def reader():
        start.wait()
        while not done.is_set():
            counts = h.counts
            if (counts > k).any() or counts[-1] != 0:
                torn.append(counts.copy())
            # count is derived from the same merged counts, so this
            # invariant cannot tear — assert it anyway.
            snap = h.snapshot_dict()
            if sum(snap["counts"]) != np.sum(snap["counts"]):
                torn.append(snap)

    threads = [
        threading.Thread(target=writer, args=(i,))
        for i in range(n_threads)
    ]
    rd = threading.Thread(target=reader)
    rd.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    done.set()
    rd.join()

    assert not torn
    counts = h.counts
    assert counts[-1] == 0
    np.testing.assert_array_equal(counts[:-1], k)
    assert h.count == n_threads * k


def test_counter_concurrent_adds_sum_exactly():
    m = MetricsRegistry()
    c = m.counter("adds")
    n_threads, k = 8, 10000
    start = threading.Barrier(n_threads)

    def writer():
        start.wait()
        for _ in range(k):
            c.add(1)

    threads = [
        threading.Thread(target=writer) for _ in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == n_threads * k
