"""Telemetry through the serving stack: live histograms vs exact
percentiles, span coverage of the kernel stages, and the legacy stats
views staying bit-compatible with the registry."""

import numpy as np
import pytest

from repro.core import MAROnlyDifferentiator
from repro.obs import (
    BUCKET_FACTOR,
    Telemetry,
    histogram_percentiles_ms,
    percentiles_ms,
)
from repro.positioning import KERNEL_STATS, WKNNEstimator
from repro.serving import PositioningService, ServingPipeline


def scans(dataset, n, seed):
    rng = np.random.default_rng(seed)
    rps = dataset.venue.reference_points
    return np.stack(
        [
            dataset.channel.measure(rps[i % len(rps)], rng).rssi
            for i in range(n)
        ]
    )


@pytest.fixture
def telemetry():
    return Telemetry(sample_every=1)


@pytest.fixture
def service(kaide_smoke, telemetry):
    svc = PositioningService(cache_size=0, telemetry=telemetry)
    svc.deploy(
        "kaide",
        kaide_smoke.radio_map,
        MAROnlyDifferentiator(),
        # Force the spatial-index path so KERNEL_STATS deltas exist
        # for the kernel-stage span reconstruction.
        estimator=WKNNEstimator(spatial_index="on"),
    )
    return svc


def test_live_pipeline_histogram_matches_exact_percentiles(
    service, telemetry, kaide_smoke
):
    """The acceptance bar: p50/p95/p99 read live off the
    ``pipeline.request_seconds`` histogram agree with the exact
    (loadgen-style) percentiles of the same requests to within one
    bucket width."""
    import time

    rows = scans(kaide_smoke, 64, seed=5)
    latencies = []
    with ServingPipeline(service, max_batch=8) as pipeline:
        for _ in range(4):  # several flushes, some queueing variety
            t0 = time.perf_counter()
            tickets = pipeline.submit_many("kaide", rows)
            for ticket in tickets:
                ticket.result(timeout=30.0)
            # Per-request client-side latency: submit stamp to the
            # flusher's resolution stamp, same bracket the pipeline's
            # own histogram records.
            for ticket in tickets:
                latencies.append(ticket.done_at - t0)

    hist = telemetry.metrics.histogram("pipeline.request_seconds")
    assert hist.count == 4 * len(rows)
    live = histogram_percentiles_ms(hist)
    exact = percentiles_ms(latencies)
    for key in ("p50_ms", "p95_ms", "p99_ms"):
        # The live value is a bucket upper edge; the exact client-side
        # measurement differs from the server-side recording by
        # microseconds, so allow the quantized value to sit within one
        # bucket either side of the exact percentile's bucket.
        assert (
            exact[key] / BUCKET_FACTOR
            <= live[key]
            <= exact[key] * BUCKET_FACTOR ** 2
        ), (key, exact[key], live[key])


def test_span_tree_covers_all_kernel_stages(
    service, telemetry, kaide_smoke
):
    KERNEL_STATS.enable()
    try:
        service.query_batch(
            ["kaide"] * 16, scans(kaide_smoke, 16, seed=9)
        )
    finally:
        KERNEL_STATS.disable()
        KERNEL_STATS.reset()
    stages = set()
    for root in telemetry.tracer.traces():
        stages |= root.stage_names()
    assert "service.query_batch" in stages
    for stage in (
        "kernel.probe",
        "kernel.select",
        "kernel.bound",
        "kernel.gemm",
        "kernel.finish",
    ):
        assert stage in stages, stages


def test_service_stats_view_reads_from_registry(
    service, telemetry, kaide_smoke
):
    service.query_batch(["kaide"] * 8, scans(kaide_smoke, 8, seed=1))
    stats = service.stats
    assert stats.queries == 8
    assert (
        telemetry.metrics.counter("serving.queries").value == 8.0
    )
    # Registry reset flows through to the view (shared handles).
    telemetry.metrics.reset()
    assert service.stats.queries == 0
