"""Path-loss law properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import VenueError
from repro.radio import (
    BLUETOOTH_PROPAGATION,
    WIFI_PROPAGATION,
    PropagationModel,
)

_EMPTY = (np.empty((0, 2)), np.empty((0, 2)))


class TestMeanRSSI:
    def test_decays_with_distance(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        pts = np.array([[1.0, 0.0], [10.0, 0.0], [50.0, 0.0]])
        rssi = model.mean_rssi(np.zeros(2), -20.0, pts, *_EMPTY)
        assert rssi[0] > rssi[1] > rssi[2]

    def test_reference_distance_clamp(self):
        model = PropagationModel()
        pts = np.array([[0.01, 0.0], [1.0, 0.0]])
        rssi = model.mean_rssi(np.zeros(2), -20.0, pts, *_EMPTY)
        assert rssi[0] == pytest.approx(rssi[1])

    def test_wall_attenuation(self):
        model = PropagationModel(wall_loss_db=6.0)
        wall_s = np.array([[5.0, -1.0]])
        wall_e = np.array([[5.0, 1.0]])
        pts = np.array([[10.0, 0.0]])
        with_wall = model.mean_rssi(
            np.zeros(2), -20.0, pts, wall_s, wall_e
        )
        without = model.mean_rssi(np.zeros(2), -20.0, pts, *_EMPTY)
        assert with_wall[0] == pytest.approx(without[0] - 6.0)

    def test_two_walls_double_loss(self):
        model = PropagationModel(wall_loss_db=6.0)
        ws = np.array([[3.0, -1.0], [6.0, -1.0]])
        we = np.array([[3.0, 1.0], [6.0, 1.0]])
        pts = np.array([[10.0, 0.0]])
        with_walls = model.mean_rssi(np.zeros(2), -20.0, pts, ws, we)
        without = model.mean_rssi(np.zeros(2), -20.0, pts, *_EMPTY)
        assert with_walls[0] == pytest.approx(without[0] - 12.0)

    @given(
        st.floats(min_value=2.0, max_value=4.0),
        st.floats(min_value=2.0, max_value=80.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_textbook_formula(self, n, d):
        model = PropagationModel(
            path_loss_exponent=n, shadowing_sigma_db=0.0, wall_loss_db=0.0
        )
        rssi = model.mean_rssi(
            np.zeros(2), -20.0, np.array([[d, 0.0]]), *_EMPTY
        )
        expected = -20.0 - 10 * n * np.log10(d)
        assert rssi[0] == pytest.approx(expected, rel=1e-9)


class TestSampling:
    def test_shadowing_adds_noise(self, rng):
        model = PropagationModel(shadowing_sigma_db=3.0)
        pts = np.tile([[10.0, 0.0]], (200, 1))
        samples = model.sample_rssi(
            np.zeros(2), -20.0, pts, *_EMPTY, rng=rng
        )
        assert 1.5 < samples.std() < 4.5

    def test_zero_sigma_deterministic(self, rng):
        model = PropagationModel(shadowing_sigma_db=0.0)
        pts = np.array([[10.0, 0.0]])
        a = model.sample_rssi(np.zeros(2), -20.0, pts, *_EMPTY, rng=rng)
        b = model.mean_rssi(np.zeros(2), -20.0, pts, *_EMPTY)
        assert a[0] == b[0]


class TestValidation:
    def test_bad_exponent(self):
        with pytest.raises(VenueError):
            PropagationModel(path_loss_exponent=0.0)

    def test_negative_losses(self):
        with pytest.raises(VenueError):
            PropagationModel(wall_loss_db=-1.0)

    def test_presets_sane(self):
        assert (
            BLUETOOTH_PROPAGATION.path_loss_exponent
            > WIFI_PROPAGATION.path_loss_exponent
        )
