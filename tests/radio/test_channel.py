"""Channel model: the two missing mechanisms and calibration."""

import numpy as np
import pytest

from repro.constants import RSSI_MAX, RSSI_MIN
from repro.exceptions import VenueError
from repro.radio import ChannelModel, calibrate_detection_floor, make_channel
from repro.venue import build_grid_mall, deploy_access_points


@pytest.fixture
def channel(rng):
    plan = build_grid_mall("t", 40.0, 30.0)
    aps = deploy_access_points(plan, 30, rng)
    return make_channel(plan, aps, "wifi")


class TestMeasure:
    def test_mnar_below_floor(self, channel, rng):
        point = np.array([20.0, 15.0])
        meas = channel.measure(point, rng)
        mean = channel.mean_rssi_matrix(point[None, :])[0]
        below = mean < channel.detection_floor_dbm
        assert (meas.missing_type[below] == -1).all()

    def test_mar_only_on_observable(self, channel, rng):
        point = np.array([20.0, 15.0])
        for _ in range(5):
            meas = channel.measure(point, rng)
            mean = channel.mean_rssi_matrix(point[None, :])[0]
            mars = meas.missing_type == 0
            assert (mean[mars] >= channel.detection_floor_dbm).all()

    def test_observed_values_in_range(self, channel, rng):
        meas = channel.measure(np.array([20.0, 15.0]), rng)
        observed = np.isfinite(meas.rssi)
        assert (meas.rssi[observed] >= RSSI_MIN).all()
        assert (meas.rssi[observed] <= RSSI_MAX).all()
        assert (meas.rssi[observed] == np.rint(meas.rssi[observed])).all()

    def test_missing_entries_are_nan(self, channel, rng):
        meas = channel.measure(np.array([20.0, 15.0]), rng)
        assert np.isnan(meas.rssi[meas.missing_type != 1]).all()
        assert np.isfinite(meas.rssi[meas.missing_type == 1]).all()

    def test_mar_rate_statistics(self, channel, rng):
        point = np.array([20.0, 15.0])
        observable = channel.observable_mask(point[None, :])[0]
        if observable.sum() < 3:
            pytest.skip("too few observable APs at probe point")
        losses = []
        for _ in range(200):
            meas = channel.measure(point, rng)
            losses.append((meas.missing_type[observable] == 0).mean())
        assert abs(np.mean(losses) - channel.mar_rate) < 0.1


class TestGroundTruth:
    def test_ground_truth_nan_matches_observability(self, channel):
        point = np.array([20.0, 15.0])
        gt = channel.ground_truth_fingerprint(point)
        observable = channel.observable_mask(point[None, :])[0]
        assert np.isfinite(gt[observable]).all()
        assert np.isnan(gt[~observable]).all()


class TestCalibration:
    def test_target_fraction_achieved(self, channel):
        pts = np.random.default_rng(0).uniform(
            0, 30, size=(40, 2)
        )
        calibrated = calibrate_detection_floor(channel, pts, 0.12)
        frac = calibrated.observable_mask(pts).mean()
        assert abs(frac - 0.12) < 0.03

    def test_invalid_fraction(self, channel):
        with pytest.raises(VenueError):
            calibrate_detection_floor(channel, np.zeros((3, 2)), 1.5)


class TestFactory:
    def test_unknown_kind(self, channel):
        with pytest.raises(VenueError):
            make_channel(channel.plan, channel.access_points, "lte")

    def test_override(self, channel):
        ch = make_channel(
            channel.plan, channel.access_points, "wifi", mar_rate=0.01
        )
        assert ch.mar_rate == 0.01

    def test_needs_aps(self, channel):
        with pytest.raises(VenueError):
            ChannelModel(plan=channel.plan, access_points=[])

    def test_invalid_mar_rate(self, channel):
        with pytest.raises(VenueError):
            ChannelModel(
                plan=channel.plan,
                access_points=channel.access_points,
                mar_rate=1.0,
            )
