"""RP placement, density and adjacency patches."""

import numpy as np
import pytest

from repro.exceptions import VenueError
from repro.venue import (
    build_grid_mall,
    build_venue,
    contiguous_rp_patch,
    nearest_rp_index,
    place_reference_points,
    rp_adjacency,
    rp_density_per_100m2,
)


@pytest.fixture
def plan():
    return build_grid_mall("t", 40.0, 30.0)


class TestPlacement:
    def test_spacing_respected(self, plan):
        rps = place_reference_points(plan, spacing=5.0)
        assert rps.shape[0] > 4
        assert rps.shape[1] == 2

    def test_smaller_spacing_gives_more_rps(self, plan):
        coarse = place_reference_points(plan, spacing=8.0)
        fine = place_reference_points(plan, spacing=3.0)
        assert fine.shape[0] > coarse.shape[0]

    def test_rps_unique(self, plan):
        rps = place_reference_points(plan, spacing=4.0)
        assert np.unique(rps, axis=0).shape[0] == rps.shape[0]

    def test_rps_in_hallways(self, plan):
        rps = place_reference_points(plan, spacing=4.0)
        for rp in rps:
            assert plan.in_hallway(tuple(rp))

    def test_invalid_spacing(self, plan):
        with pytest.raises(VenueError):
            place_reference_points(plan, spacing=0.0)

    def test_density(self, plan):
        rps = place_reference_points(plan, spacing=4.0)
        d = rp_density_per_100m2(plan, rps)
        assert d == pytest.approx(100 * rps.shape[0] / plan.area)


class TestAdjacency:
    def test_nearest_rp(self):
        rps = np.array([[0, 0], [10, 0], [0, 10]])
        assert nearest_rp_index(rps, np.array([1, 1])) == 0
        assert nearest_rp_index(rps, np.array([9, 1])) == 1

    def test_adjacency_symmetric(self):
        rps = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        adj = rp_adjacency(rps, radius=2.0)
        assert 1 in adj[0] and 0 in adj[1]
        assert 2 not in adj[0]

    def test_patch_size(self, rng):
        rps = np.array(
            [[i, 0.0] for i in range(10)], dtype=float
        )
        patch = contiguous_rp_patch(rps, 6, rng, radius=1.5)
        assert len(patch) == 6
        assert len(set(patch)) == 6

    def test_patch_too_large(self, rng):
        rps = np.zeros((3, 2))
        with pytest.raises(VenueError):
            contiguous_rp_patch(rps, 6, rng)


class TestVenueBuilder:
    def test_unknown_venue(self):
        with pytest.raises(VenueError):
            build_venue("nowhere")

    def test_invalid_scale(self):
        with pytest.raises(VenueError):
            build_venue("kaide", scale=0.0)

    def test_scaled_venue_statistics(self):
        v = build_venue("kaide", scale=0.3, seed=3)
        assert v.n_aps >= 24
        assert v.n_rps >= 4
        # RP density should be in the right ballpark (paper: 3.53).
        density = 100 * v.n_rps / v.plan.area
        assert 1.0 < density < 10.0

    def test_bluetooth_channel_kind(self):
        v = build_venue("longhu", scale=0.3, seed=3)
        assert v.channel_kind == "bluetooth"

    def test_describe(self):
        v = build_venue("wanda", scale=0.3, seed=3)
        assert "wanda" in v.describe()
