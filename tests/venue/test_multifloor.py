"""Stacked-floor venue model: portals, validation, global AP space."""

import numpy as np
import pytest

from repro.exceptions import VenueError
from repro.geometry import Polygon
from repro.venue import (
    PORTAL_KINDS,
    Floor,
    Portal,
    Venue,
    build_multifloor_venue,
)

foot = Polygon.rectangle(0, 0, 2, 2)


def make_portal(**overrides):
    kwargs = dict(
        name="lift",
        kind="elevator",
        floor_a="f1",
        floor_b="f2",
        point_a=(1.0, 1.0),
        point_b=(1.0, 1.0),
        footprint_a=foot,
        footprint_b=foot,
    )
    kwargs.update(overrides)
    return Portal(**kwargs)


class TestPortal:
    def test_kinds_have_traversal_times(self):
        assert set(PORTAL_KINDS) == {"stairs", "elevator"}
        assert all(t > 0 for t in PORTAL_KINDS.values())

    def test_unknown_kind_rejected(self):
        with pytest.raises(VenueError, match="kind"):
            make_portal(kind="wormhole")

    def test_self_loop_rejected(self):
        with pytest.raises(VenueError, match="itself"):
            make_portal(floor_b="f1")

    def test_point_outside_footprint_rejected(self):
        with pytest.raises(VenueError, match="outside"):
            make_portal(point_a=(5.0, 5.0))

    def test_endpoint_per_floor(self):
        p = make_portal(point_b=(0.5, 0.5))
        np.testing.assert_allclose(p.endpoint("f1"), [1.0, 1.0])
        np.testing.assert_allclose(p.endpoint("f2"), [0.5, 0.5])
        with pytest.raises(VenueError, match="does not touch"):
            p.endpoint("f3")

    def test_connects_either_direction(self):
        p = make_portal()
        assert p.connects("f1", "f2")
        assert p.connects("f2", "f1")
        assert not p.connects("f1", "f3")


class TestBuildMultifloor:
    def test_two_floor_tower(self, multifloor_smoke):
        venue = multifloor_smoke.venue
        assert venue.n_floors == 2
        assert venue.floor_ids == ("f1", "f2")
        # One elevator + one stairwell per consecutive pair.
        assert len(venue.portals) == 2
        assert {p.kind for p in venue.portals} == {
            "elevator",
            "stairs",
        }
        assert len(venue.portals_between("f1", "f2")) == 2
        assert venue.portals_on("f1") == venue.portals

    def test_global_ap_ids_contiguous(self, multifloor_smoke):
        venue = multifloor_smoke.venue
        ids = [ap.ap_id for ap in venue.access_points]
        assert ids == list(range(venue.n_aps))
        assert venue.n_aps == sum(f.n_aps for f in venue.floors)

    def test_ap_floor_index_partitions(self, multifloor_smoke):
        venue = multifloor_smoke.venue
        idx = venue.ap_floor_index()
        assert idx.shape == (venue.n_aps,)
        f1 = venue.floors[0]
        assert (idx[: f1.n_aps] == 0).all()
        assert (idx[f1.n_aps :] == 1).all()

    def test_floor_levels_and_heights(self):
        venue = build_multifloor_venue(
            "kaide", n_floors=3, scale=0.28, floor_height=3.5
        )
        assert [f.level for f in venue.floors] == [0, 1, 2]
        assert [f.z for f in venue.floors] == [0.0, 3.5, 7.0]
        # A 3-floor tower chains portals pairwise, never skips.
        assert venue.portals_between("f1", "f3") == []
        assert len(venue.portals_between("f2", "f3")) == 2

    def test_floor_spec_carries_global_aps(self, multifloor_smoke):
        venue = multifloor_smoke.venue
        spec = venue.floor_spec("f2")
        assert spec.name == "kaide/f2"
        assert len(spec.access_points) == venue.n_aps
        assert spec.plan is venue.floor("f2").plan

    def test_unknown_floor_rejected(self, multifloor_smoke):
        with pytest.raises(VenueError, match="no floor"):
            multifloor_smoke.venue.floor("f9")

    def test_unknown_preset_rejected(self):
        with pytest.raises(VenueError, match="unknown venue"):
            build_multifloor_venue("atlantis")

    def test_single_floor_tower_has_no_portals(self):
        venue = build_multifloor_venue(
            "kaide", n_floors=1, scale=0.28
        )
        assert venue.n_floors == 1
        assert venue.portals == []


class TestValidation:
    def _floor(self, base, floor_id, level, z, ap_offset):
        from repro.venue import AccessPoint

        src = base.floors[0]
        aps = [
            AccessPoint(
                ap_id=ap_offset + i,
                position=ap.position,
                tx_power_dbm=ap.tx_power_dbm,
            )
            for i, ap in enumerate(src.access_points)
        ]
        return Floor(
            floor_id=floor_id,
            level=level,
            z=z,
            plan=src.plan,
            access_points=aps,
            reference_points=src.reference_points,
        )

    @pytest.fixture(scope="class")
    def base(self):
        return build_multifloor_venue("kaide", n_floors=1, scale=0.28)

    def test_no_floors_rejected(self):
        with pytest.raises(VenueError, match="no floors"):
            Venue(name="empty")

    def test_duplicate_floor_ids_rejected(self, base):
        n = base.floors[0].n_aps
        with pytest.raises(VenueError, match="duplicate"):
            Venue(
                name="dup",
                floors=[
                    self._floor(base, "f1", 0, 0.0, 0),
                    self._floor(base, "f1", 1, 4.0, n),
                ],
            )

    def test_nonincreasing_levels_rejected(self, base):
        n = base.floors[0].n_aps
        with pytest.raises(VenueError, match="levels"):
            Venue(
                name="bad",
                floors=[
                    self._floor(base, "f1", 1, 0.0, 0),
                    self._floor(base, "f2", 0, 4.0, n),
                ],
            )

    def test_broken_ap_id_space_rejected(self, base):
        n = base.floors[0].n_aps
        with pytest.raises(VenueError, match="contiguous"):
            Venue(
                name="bad",
                floors=[
                    self._floor(base, "f1", 0, 0.0, 0),
                    # Second floor restarts ids at 0 instead of n.
                    self._floor(base, "f2", 1, 4.0, 0),
                ],
            )

    def test_disconnected_floors_rejected(self, base):
        n = base.floors[0].n_aps
        with pytest.raises(VenueError, match="not connected"):
            Venue(
                name="bad",
                floors=[
                    self._floor(base, "f1", 0, 0.0, 0),
                    self._floor(base, "f2", 1, 4.0, n),
                ],
                portals=[],
            )

    def test_portal_to_unknown_floor_rejected(self, base):
        with pytest.raises(VenueError, match="unknown"):
            Venue(
                name="bad",
                floors=[self._floor(base, "f1", 0, 0.0, 0)],
                portals=[make_portal(floor_a="f9", floor_b="f1")],
            )

    def test_portal_endpoint_off_walkable_rejected(self, base):
        """An endpoint inside its footprint but off the corridors:
        Portal construction accepts it, venue validation does not."""
        n = base.floors[0].n_aps
        with pytest.raises(VenueError, match="off the walkable"):
            Venue(
                name="bad",
                floors=[
                    self._floor(base, "f1", 0, 0.0, 0),
                    self._floor(base, "f2", 1, 4.0, n),
                ],
                portals=[make_portal()],
            )
