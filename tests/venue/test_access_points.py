"""AP deployment."""

import numpy as np
import pytest

from repro.exceptions import VenueError
from repro.venue import (
    ap_positions,
    ap_powers,
    build_grid_mall,
    deploy_access_points,
)


@pytest.fixture
def plan():
    return build_grid_mall("t", 40.0, 30.0)


class TestDeployment:
    def test_count(self, plan, rng):
        aps = deploy_access_points(plan, 25, rng)
        assert len(aps) == 25
        assert [a.ap_id for a in aps] == list(range(25))

    def test_positions_inside_bounds(self, plan, rng):
        aps = deploy_access_points(plan, 40, rng)
        pos = ap_positions(aps)
        assert (pos[:, 0] >= 0).all() and (pos[:, 0] <= plan.width).all()
        assert (pos[:, 1] >= 0).all() and (pos[:, 1] <= plan.height).all()

    def test_room_fraction_zero_puts_all_in_hallways(self, plan, rng):
        aps = deploy_access_points(plan, 10, rng, room_fraction=0.0)
        for ap in aps:
            assert plan.in_hallway(ap.position)

    def test_room_fraction_one_puts_all_in_rooms(self, plan, rng):
        aps = deploy_access_points(plan, 10, rng, room_fraction=1.0)
        for ap in aps:
            assert plan.entities.contains_point(ap.position)

    def test_power_jitter(self, plan, rng):
        aps = deploy_access_points(
            plan, 50, rng, tx_power_dbm=-20.0, tx_power_jitter=4.0
        )
        powers = ap_powers(aps)
        assert powers.std() > 0.5
        assert abs(powers.mean() + 20.0) < 3.0

    def test_invalid_count(self, plan, rng):
        with pytest.raises(VenueError):
            deploy_access_points(plan, 0, rng)

    def test_invalid_fraction(self, plan, rng):
        with pytest.raises(VenueError):
            deploy_access_points(plan, 5, rng, room_fraction=1.5)

    def test_deterministic_given_seed(self, plan):
        a = deploy_access_points(plan, 8, np.random.default_rng(7))
        b = deploy_access_points(plan, 8, np.random.default_rng(7))
        assert np.allclose(ap_positions(a), ap_positions(b))
