"""Floor-plan generation and validation."""

import networkx as nx
import pytest

from repro.exceptions import VenueError
from repro.venue import FloorPlan, build_grid_mall


@pytest.fixture
def mall() -> FloorPlan:
    return build_grid_mall("test", 40.0, 30.0, corridors_x=2, corridors_y=2)


class TestBuildGridMall:
    def test_area(self, mall):
        assert mall.area == pytest.approx(1200.0)

    def test_has_rooms_and_hallways(self, mall):
        assert len(mall.rooms) > 0
        assert len(mall.hallways) == 4  # 2 vertical + 2 horizontal

    def test_graph_connected(self, mall):
        assert nx.is_connected(mall.hallway_graph)

    def test_graph_nodes_have_positions(self, mall):
        for _, data in mall.hallway_graph.nodes(data=True):
            assert "pos" in data

    def test_rooms_do_not_touch_corridors(self, mall):
        # Room polygons must not intersect hallway polygons (margins).
        for room in mall.rooms:
            for hall in mall.hallways:
                assert not room.intersects_polygon(hall)

    def test_wall_segments_nonempty(self, mall):
        starts, ends = mall.wall_segments()
        assert starts.shape[0] == 4 * len(mall.rooms)
        assert starts.shape == ends.shape

    def test_in_hallway(self, mall):
        # A corridor centreline node is inside a hallway.
        pos = next(iter(mall.node_positions().values()))
        assert mall.in_hallway(tuple(pos))

    def test_invalid_corridor_width(self):
        with pytest.raises(VenueError):
            build_grid_mall("bad", 40, 30, corridor_width=0)

    def test_invalid_corridor_count(self):
        with pytest.raises(VenueError):
            build_grid_mall("bad", 40, 30, corridors_x=0)

    def test_describe_mentions_name(self, mall):
        assert "test" in mall.describe()


class TestFloorPlanValidation:
    def test_positive_extent_required(self):
        with pytest.raises(VenueError):
            FloorPlan(name="x", width=0, height=10)

    def test_validate_requires_hallways(self):
        plan = FloorPlan(name="x", width=10, height=10)
        with pytest.raises(VenueError):
            plan.validate()

    def test_entities_are_rooms(self, mall):
        assert len(mall.entities) == len(mall.rooms)
