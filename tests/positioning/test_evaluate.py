"""The Section V-A evaluation-control protocol."""

import numpy as np
import pytest

from repro.core import MAROnlyDifferentiator, TopoACDifferentiator
from repro.imputers import CaseDeletionImputer, LinearInterpolationImputer
from repro.positioning import WKNNEstimator, evaluate_pipeline


class TestEvaluatePipeline:
    def test_li_pipeline(self, kaide_smoke):
        out = evaluate_pipeline(
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            LinearInterpolationImputer(),
            WKNNEstimator(),
            np.random.default_rng(0),
        )
        assert np.isfinite(out.ape)
        diagonal = np.hypot(
            kaide_smoke.venue.plan.width, kaide_smoke.venue.plan.height
        )
        assert 0 < out.ape < diagonal
        assert out.n_test_records >= 1
        assert out.estimated.shape == out.truth.shape

    def test_cd_pipeline_handles_dropped_test_rows(self, kaide_smoke):
        out = evaluate_pipeline(
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            CaseDeletionImputer(),
            WKNNEstimator(),
            np.random.default_rng(0),
        )
        assert np.isfinite(out.ape)
        # CD trains on fewer records than LI.
        out_li = evaluate_pipeline(
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            LinearInterpolationImputer(),
            WKNNEstimator(),
            np.random.default_rng(0),
        )
        assert out.n_train_records < out_li.n_train_records

    def test_precomputed_mask_shortcut(self, kaide_smoke):
        mask = MAROnlyDifferentiator().differentiate(
            kaide_smoke.radio_map
        )
        # The mask is computed on the split map inside; passing one
        # computed on the full map is allowed for control-variates runs
        # as long as shapes agree.
        out = evaluate_pipeline(
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            LinearInterpolationImputer(),
            WKNNEstimator(),
            np.random.default_rng(1),
            mask=mask,
        )
        assert np.isfinite(out.ape)

    def test_deterministic_given_rng(self, kaide_smoke):
        outs = [
            evaluate_pipeline(
                kaide_smoke.radio_map,
                MAROnlyDifferentiator(),
                LinearInterpolationImputer(),
                WKNNEstimator(),
                np.random.default_rng(7),
            ).ape
            for _ in range(2)
        ]
        assert outs[0] == outs[1]
