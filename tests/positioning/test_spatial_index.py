"""Spatial-index exactness: bit parity with the brute exact path."""

import numpy as np
import pytest

from repro.exceptions import PositioningError
from repro.positioning import (
    INDEX_MIN_RECORDS,
    KNNEstimator,
    SpatialIndex,
    WKNNEstimator,
    canonical_k_smallest,
    load_estimator,
    pairwise_sq_dists,
)


def synthetic_map(n, d=24, seed=0):
    """Log-distance RSSI radio map: realistic magnitudes (~-90 dBm)."""
    rng = np.random.default_rng(seed)
    aps = rng.uniform(0.0, 120.0, size=(d, 2))
    rps = rng.uniform(0.0, 120.0, size=(n, 2))
    dist = np.linalg.norm(rps[:, None, :] - aps[None, :, :], axis=2)
    rssi = -30.0 - 30.0 * np.log10(np.maximum(dist, 1.0))
    rssi += rng.normal(0.0, 3.0, size=rssi.shape)
    return np.clip(rssi, -95.0, -20.0), rps


def queries_near(fp, n, seed=1):
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, fp.shape[0], size=n)
    return fp[picks] + rng.normal(0.0, 2.5, size=(n, fp.shape[1]))


def brute_exact(queries, refs, k):
    """The parity reference: exact distances + canonical selection."""
    return canonical_k_smallest(
        pairwise_sq_dists(queries, refs, exact=True), k
    )


class TestCanonicalKSmallest:
    def test_sorted_by_value_then_id(self):
        d2 = np.array([[3.0, 1.0, 2.0, 1.0]])
        vals, ids = canonical_k_smallest(d2, 3)
        np.testing.assert_array_equal(vals, [[1.0, 1.0, 2.0]])
        np.testing.assert_array_equal(ids, [[1, 3, 2]])

    def test_boundary_ties_go_to_smaller_ids(self):
        # Three columns tie at the k-th value; only the smallest ids
        # may be selected, whichever side argpartition left them on.
        d2 = np.array([[5.0, 5.0, 0.0, 5.0, 9.0]])
        vals, ids = canonical_k_smallest(d2, 2)
        np.testing.assert_array_equal(vals, [[0.0, 5.0]])
        np.testing.assert_array_equal(ids, [[2, 0]])

    def test_id_mapping_with_inf_padding(self):
        d2 = np.array([[np.inf, 2.0, 1.0]])
        ids = np.array([[-1, 7, 4]])
        vals, out = canonical_k_smallest(d2, 2, ids)
        np.testing.assert_array_equal(vals, [[1.0, 2.0]])
        np.testing.assert_array_equal(out, [[4, 7]])

    def test_k_equals_width(self):
        d2 = np.array([[2.0, 1.0], [1.0, 1.0]])
        vals, ids = canonical_k_smallest(d2, 2)
        np.testing.assert_array_equal(vals, [[1.0, 2.0], [1.0, 1.0]])
        np.testing.assert_array_equal(ids, [[1, 0], [0, 1]])

    @pytest.mark.parametrize("k", [0, 3])
    def test_k_out_of_range_rejected(self, k):
        with pytest.raises(PositioningError, match="out of range"):
            canonical_k_smallest(np.ones((2, 2)), k)


class TestExactDistances:
    def test_exact_matches_per_pair_reference(self):
        fp, _ = synthetic_map(67, d=9, seed=3)
        q = queries_near(fp, 13, seed=4)
        d2 = pairwise_sq_dists(q, fp, exact=True)
        for i in range(q.shape[0]):
            for j in (0, 31, 66):
                diff = q[i] - fp[j]
                assert d2[i, j] == (diff * diff).sum()

    def test_exact_beats_expansion_cancellation(self):
        # Rows around -90 dBm differing in the 7th decimal: the
        # expansion loses the difference to cancellation, the exact
        # path keeps full precision.
        base = np.full((1, 16), -90.0)
        near = base + 1e-7
        exact = pairwise_sq_dists(near, base, exact=True)[0, 0]
        truth = 16 * 1e-14
        assert abs(exact - truth) < 1e-16
        assert exact > 0.0

    def test_chunking_does_not_change_results(self):
        fp, _ = synthetic_map(50, d=8, seed=5)
        q = queries_near(fp, 20, seed=6)
        whole = pairwise_sq_dists(q, fp, exact=True)
        chunked = pairwise_sq_dists(q, fp, exact=True, chunk_elems=64)
        np.testing.assert_array_equal(whole, chunked)


class TestIndexParity:
    @pytest.mark.parametrize("k", [1, 3, 17])
    def test_bit_identical_to_brute_exact(self, k):
        fp, _ = synthetic_map(3000, d=24, seed=7)
        index = SpatialIndex.build(fp)
        q = queries_near(fp, 64, seed=8)
        d2, ids = index.query(q, k)
        ed2, eids = brute_exact(q, fp, k)
        np.testing.assert_array_equal(ids, eids)
        np.testing.assert_array_equal(d2, ed2)

    def test_duplicate_rows_tie_break_parity(self):
        base, _ = synthetic_map(400, d=12, seed=9)
        fp = np.repeat(base, 3, axis=0)  # every distance ties 3-way
        index = SpatialIndex.build(fp)
        q = queries_near(base, 32, seed=10)
        d2, ids = index.query(q, 5)
        ed2, eids = brute_exact(q, fp, 5)
        np.testing.assert_array_equal(ids, eids)
        np.testing.assert_array_equal(d2, ed2)

    def test_queries_on_reference_rows(self):
        fp, _ = synthetic_map(1500, d=16, seed=11)
        d2, ids = SpatialIndex.build(fp).query(fp[:40], 1)
        np.testing.assert_array_equal(d2, np.zeros((40, 1)))
        # Exact self-match: distance 0 at the row's own index (no
        # duplicates in this map).
        np.testing.assert_array_equal(ids[:, 0], np.arange(40))

    def test_one_dimensional_map(self):
        rng = np.random.default_rng(12)
        fp = rng.uniform(-95.0, -20.0, size=(600, 1))
        q = rng.uniform(-95.0, -20.0, size=(25, 1))
        d2, ids = SpatialIndex.build(fp).query(q, 4)
        ed2, eids = brute_exact(q, fp, 4)
        np.testing.assert_array_equal(ids, eids)
        np.testing.assert_array_equal(d2, ed2)

    def test_persistence_round_trip_parity(self):
        fp, _ = synthetic_map(2000, d=20, seed=13)
        index = SpatialIndex.build(fp)
        clone = SpatialIndex.from_arrays(index.to_arrays(), fp)
        q = queries_near(fp, 48, seed=14)
        for a, b in zip(index.query(q, 6), clone.query(q, 6)):
            np.testing.assert_array_equal(a, b)

    def test_refreshed_stays_exact(self):
        fp, _ = synthetic_map(2400, d=18, seed=15)
        index = SpatialIndex.build(fp)
        rng = np.random.default_rng(16)
        new_fp = fp.copy()
        dirty = rng.choice(2400, size=120, replace=False)
        new_fp[dirty] += rng.normal(0.0, 5.0, size=(120, 18))
        appended, _ = synthetic_map(60, d=18, seed=17)
        new_fp = np.vstack([new_fp, appended])
        keep = np.setdiff1d(np.arange(2400), dirty)
        refreshed = index.refreshed(new_fp, keep, keep)
        q = queries_near(new_fp, 48, seed=18)
        d2, ids = refreshed.query(q, 7)
        ed2, eids = brute_exact(q, new_fp, 7)
        np.testing.assert_array_equal(ids, eids)
        np.testing.assert_array_equal(d2, ed2)

    def test_refreshed_mostly_dirty_falls_back_to_build(self):
        fp, _ = synthetic_map(1200, d=10, seed=19)
        index = SpatialIndex.build(fp)
        new_fp, _ = synthetic_map(1200, d=10, seed=20)
        keep = np.arange(100)  # < half kept -> from-scratch rebuild
        refreshed = index.refreshed(new_fp, keep, keep)
        q = queries_near(new_fp, 24, seed=21)
        d2, ids = refreshed.query(q, 3)
        ed2, eids = brute_exact(q, new_fp, 3)
        np.testing.assert_array_equal(ids, eids)
        np.testing.assert_array_equal(d2, ed2)


class TestKernelParity:
    """Both query kernels, adversarial bucket shapes, bit parity.

    The grouped CSR-GEMM kernel and the legacy per-bucket loop share
    the exact f64 finish, so every case asserts full bit equality —
    each kernel against the brute exact reference and (implicitly)
    against the other.
    """

    @staticmethod
    def both_kernels_match_brute(fp, q, k):
        index = SpatialIndex.build(fp)
        ed2, eids = brute_exact(q, fp, k)
        for kernel in ("grouped", "bucket"):
            d2, ids = index.query(q, k, kernel=kernel)
            np.testing.assert_array_equal(ids, eids, err_msg=kernel)
            np.testing.assert_array_equal(d2, ed2, err_msg=kernel)

    def test_giant_bucket_plus_singletons(self):
        # One dense blob collapses into a single huge bucket while the
        # far-flung rest scatter into singleton buckets (and leave
        # most grid cells empty in between).
        rng = np.random.default_rng(40)
        blob = -60.0 + rng.normal(0.0, 0.05, size=(4000, 12))
        lone = rng.uniform(-95.0, -20.0, size=(40, 12))
        fp = np.vstack([blob, lone])
        q = np.vstack(
            [
                blob[:20] + rng.normal(0.0, 0.02, size=(20, 12)),
                lone[:10] + rng.normal(0.0, 2.0, size=(10, 12)),
            ]
        )
        self.both_kernels_match_brute(fp, q, 5)

    def test_empty_buckets_interleaved(self):
        # Two tight clusters at opposite corners: the grid between
        # them is entirely empty buckets.
        rng = np.random.default_rng(41)
        a = -90.0 + rng.normal(0.0, 0.5, size=(900, 8))
        c = -25.0 + rng.normal(0.0, 0.5, size=(900, 8))
        fp = np.vstack([a, c])
        q = np.vstack([a[:15], c[:15]]) + rng.normal(
            0.0, 0.3, size=(30, 8)
        )
        self.both_kernels_match_brute(fp, q, 4)

    def test_duplicate_fingerprints_mass_ties(self):
        # Heavy duplication: k spans several duplicate groups, so the
        # canonical (value, id) tie-break decides every slot.
        base, _ = synthetic_map(150, d=10, seed=42)
        fp = np.repeat(base, 8, axis=0)
        q = queries_near(base, 40, seed=43)
        self.both_kernels_match_brute(fp, q, 11)

    def test_k_exceeds_every_bucket_population(self):
        # k far above the mean bucket size forces multi-bucket probes
        # for every query.
        fp, _ = synthetic_map(2000, d=16, seed=44)
        q = queries_near(fp, 24, seed=45)
        self.both_kernels_match_brute(fp, q, 40)

    def test_refreshed_index_grouped_kernel(self):
        fp, _ = synthetic_map(2400, d=14, seed=46)
        index = SpatialIndex.build(fp)
        rng = np.random.default_rng(47)
        new_fp = fp.copy()
        dirty = rng.choice(2400, size=150, replace=False)
        new_fp[dirty] += rng.normal(0.0, 5.0, size=(150, 14))
        keep = np.setdiff1d(np.arange(2400), dirty)
        refreshed = index.refreshed(new_fp, keep, keep)
        q = queries_near(new_fp, 32, seed=48)
        ed2, eids = brute_exact(q, new_fp, 6)
        for kernel in ("grouped", "bucket"):
            d2, ids = refreshed.query(q, 6, kernel=kernel)
            np.testing.assert_array_equal(ids, eids, err_msg=kernel)
            np.testing.assert_array_equal(d2, ed2, err_msg=kernel)

    def test_invalid_kernel_rejected(self):
        fp, _ = synthetic_map(600, d=8, seed=49)
        index = SpatialIndex.build(fp)
        with pytest.raises(PositioningError, match="kernel"):
            index.query(fp[:4], 2, kernel="vectorised")


class TestSelectionMemory:
    """The dense (b, width) scatter must refuse pathological pools."""

    def test_pooled_kth_fallback_matches_dense(self):
        rng = np.random.default_rng(50)
        b = 64
        qi = np.repeat(np.arange(b), rng.integers(3, 30, size=b))
        v = rng.uniform(0.0, 9.0, size=qi.size).astype(np.float32)
        dense = SpatialIndex._pooled_kth(qi, v, b, 3)
        # Same pool through the lexsort fallback (cap forced to 0 by
        # inflating b so b*width overflows the dense budget).
        wide = 1 << 22
        padded = SpatialIndex._pooled_kth(qi, v, wide, 3)[:b]
        np.testing.assert_array_equal(dense, padded)

    def test_one_fat_query_stays_o_candidates(self):
        # One query pools half a million candidates among 2048 total
        # queries: the old dense scatter would materialise a
        # (2048, 500k) float32 — ~4 GB.  The segment fallback keeps
        # peak allocation proportional to the candidates themselves.
        import tracemalloc

        rng = np.random.default_rng(51)
        b = 2048
        fat = rng.uniform(0.0, 9.0, size=500_000)
        thin = rng.uniform(0.0, 9.0, size=b - 1)
        qi = np.concatenate(
            [np.zeros(fat.size, np.int64), np.arange(1, b)]
        )
        v = np.concatenate([fat, thin]).astype(np.float32)
        tracemalloc.start()
        kth = SpatialIndex._pooled_kth(qi, v, b, 3)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 100 * 1024 * 1024
        assert kth[0] == np.partition(fat, 2)[2].astype(np.float32)
        assert np.isinf(kth[5])  # single-candidate query, k=3


class TestEstimatorIntegration:
    def test_auto_mode_thresholds_on_map_size(self):
        small, small_loc = synthetic_map(200, d=6, seed=22)
        est = KNNEstimator().fit(small, small_loc)
        assert est.index is None
        big, big_loc = synthetic_map(INDEX_MIN_RECORDS, d=6, seed=23)
        est = KNNEstimator().fit(big, big_loc)
        assert est.index is not None

    def test_forced_modes(self):
        fp, loc = synthetic_map(300, d=6, seed=24)
        assert KNNEstimator(spatial_index="on").fit(fp, loc).index
        assert (
            WKNNEstimator(spatial_index="off").fit(fp, loc).index
            is None
        )

    def test_invalid_mode_rejected(self):
        fp, loc = synthetic_map(50, d=4, seed=25)
        with pytest.raises(PositioningError, match="spatial_index"):
            KNNEstimator(spatial_index="fast").fit(fp, loc)

    @pytest.mark.parametrize("cls", [KNNEstimator, WKNNEstimator])
    def test_predictions_bit_identical_to_exact_brute(self, cls):
        fp, loc = synthetic_map(2500, d=24, seed=26)
        q = queries_near(fp, 50, seed=27)
        indexed = cls(k=4, spatial_index="on").fit(fp, loc)
        brute = cls(k=4, spatial_index="off", exact_distances=True).fit(
            fp, loc
        )
        np.testing.assert_array_equal(
            indexed.predict(q, squeeze=False),
            brute.predict(q, squeeze=False),
        )

    def test_k_not_smaller_than_map_uses_brute(self):
        fp, loc = synthetic_map(5, d=4, seed=28)
        est = WKNNEstimator(k=8, spatial_index="on").fit(fp, loc)
        ref = WKNNEstimator(k=8, spatial_index="off").fit(fp, loc)
        q = queries_near(fp, 6, seed=29)
        np.testing.assert_array_equal(
            est.predict(q, squeeze=False), ref.predict(q, squeeze=False)
        )

    def test_save_load_preserves_index_and_predictions(self, tmp_path):
        fp, loc = synthetic_map(2200, d=16, seed=30)
        est = WKNNEstimator(k=5, spatial_index="on").fit(fp, loc)
        q = queries_near(fp, 30, seed=31)
        expected = est.predict(q, squeeze=False)
        est.save(tmp_path / "wknn.npz")
        loaded = load_estimator(tmp_path / "wknn.npz")
        assert loaded.index is not None
        assert loaded.index.n_records == fp.shape[0]
        np.testing.assert_array_equal(
            loaded.index.assign, est.index.assign
        )
        np.testing.assert_array_equal(
            loaded.predict(q, squeeze=False), expected
        )

    def test_load_without_index_arrays_honours_mode(self, tmp_path):
        fp, loc = synthetic_map(700, d=8, seed=32)
        off = KNNEstimator(k=3, spatial_index="off").fit(fp, loc)
        off.save(tmp_path / "off.npz")
        loaded = load_estimator(tmp_path / "off.npz")
        assert loaded.index is None
        q = queries_near(fp, 12, seed=33)
        np.testing.assert_array_equal(
            loaded.predict(q, squeeze=False),
            off.predict(q, squeeze=False),
        )

    def test_fit_incremental_matches_fresh_fit(self):
        fp, loc = synthetic_map(2600, d=14, seed=34)
        est = WKNNEstimator(k=4, spatial_index="on").fit(fp, loc)
        rng = np.random.default_rng(35)
        new_fp = fp.copy()
        dirty = rng.choice(2600, size=90, replace=False)
        new_fp[dirty] += rng.normal(0.0, 4.0, size=(90, 14))
        keep = np.setdiff1d(np.arange(2600), dirty)
        est.fit_incremental(new_fp, loc, keep, keep)
        fresh = WKNNEstimator(k=4, spatial_index="on").fit(new_fp, loc)
        q = queries_near(new_fp, 40, seed=36)
        np.testing.assert_array_equal(
            est.predict(q, squeeze=False),
            fresh.predict(q, squeeze=False),
        )
