"""KNN, WKNN and random-forest location estimation."""

import numpy as np
import pytest

from repro.exceptions import PositioningError
from repro.positioning import (
    KNNEstimator,
    RandomForestEstimator,
    RegressionTree,
    WKNNEstimator,
)


@pytest.fixture
def simple_map():
    """Four RPs with well-separated fingerprints."""
    fingerprints = np.array(
        [
            [-40.0, -90.0, -90.0],
            [-90.0, -40.0, -90.0],
            [-90.0, -90.0, -40.0],
            [-60.0, -60.0, -60.0],
        ]
    )
    locations = np.array(
        [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [5.0, 5.0]]
    )
    return fingerprints, locations


class TestKNN:
    def test_k1_exact_match(self, simple_map):
        fp, loc = simple_map
        est = KNNEstimator(k=1).fit(fp, loc)
        np.testing.assert_allclose(est.predict(fp), loc)

    def test_k2_averages(self):
        fp = np.array([[-40.0, -90.0], [-90.0, -40.0]])
        loc = np.array([[0.0, 0.0], [10.0, 0.0]])
        est = KNNEstimator(k=2).fit(fp, loc)
        q = (fp[0] + fp[1]) / 2
        pred = est.predict(q[None, :])[0]
        np.testing.assert_allclose(pred, [5.0, 0.0])

    def test_k_capped_at_n(self, simple_map):
        fp, loc = simple_map
        est = KNNEstimator(k=100).fit(fp, loc)
        pred = est.predict(fp[:1])[0]
        np.testing.assert_allclose(pred, loc.mean(axis=0))

    def test_rejects_incomplete_map(self):
        fp = np.array([[np.nan, -50.0]])
        with pytest.raises(PositioningError):
            KNNEstimator().fit(fp, np.zeros((1, 2)))

    def test_rejects_empty_map(self):
        with pytest.raises(PositioningError):
            KNNEstimator().fit(np.empty((0, 3)), np.empty((0, 2)))


class TestWKNN:
    def test_exact_match_dominates(self, simple_map):
        fp, loc = simple_map
        est = WKNNEstimator(k=3).fit(fp, loc)
        pred = est.predict(fp[:1])[0]
        # Distance ~0 -> weight ~1/eps overwhelms the others.
        np.testing.assert_allclose(pred, loc[0], atol=1e-3)

    def test_weighting_pulls_towards_closer(self, simple_map):
        fp, loc = simple_map
        est = WKNNEstimator(k=2).fit(fp, loc)
        q = 0.8 * fp[0] + 0.2 * fp[1]
        pred = est.predict(q[None, :])[0]
        # Closer to RP0 than to RP1.
        assert np.linalg.norm(pred - loc[0]) < np.linalg.norm(
            pred - loc[1]
        )


class TestRegressionTree:
    def test_fits_axis_aligned_partition(self, rng):
        x = rng.uniform(0, 10, size=(200, 1))
        y = np.where(x[:, :1] < 5, 0.0, 10.0).repeat(2, axis=1)
        tree = RegressionTree(max_depth=3).fit(x, y)
        pred = tree.predict(np.array([[2.0], [8.0]]))
        np.testing.assert_allclose(pred[0], [0.0, 0.0], atol=0.5)
        np.testing.assert_allclose(pred[1], [10.0, 10.0], atol=0.5)

    def test_leaf_is_mean(self, rng):
        x = np.ones((10, 2))
        y = rng.normal(size=(10, 2))
        tree = RegressionTree().fit(x, y)
        np.testing.assert_allclose(
            tree.predict(x[:1])[0], y.mean(axis=0)
        )

    def test_predict_before_fit(self):
        with pytest.raises(PositioningError):
            RegressionTree().predict(np.ones((1, 2)))

    def test_depth_limit_respected(self, rng):
        x = rng.uniform(size=(50, 2))
        y = rng.uniform(size=(50, 2))
        tree = RegressionTree(max_depth=1).fit(x, y)

        def depth(node):
            if node.is_leaf:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        assert depth(tree._root) <= 1


class TestRandomForest:
    def test_positions_from_fingerprints(self, simple_map, rng):
        fp, loc = simple_map
        # Add noisy replicas so the forest has data to learn from.
        fps = np.concatenate(
            [fp + rng.normal(0, 1.0, size=fp.shape) for _ in range(20)]
        )
        locs = np.tile(loc, (20, 1))
        est = RandomForestEstimator(n_trees=10).fit(fps, locs)
        pred = est.predict(fp)
        errors = np.linalg.norm(pred - loc, axis=1)
        assert errors.mean() < 3.0

    def test_predict_before_fit(self):
        with pytest.raises(PositioningError):
            RandomForestEstimator().predict(np.ones((1, 3)))

    def test_deterministic_given_seed(self, simple_map):
        fp, loc = simple_map
        a = RandomForestEstimator(n_trees=5, seed=3).fit(fp, loc)
        b = RandomForestEstimator(n_trees=5, seed=3).fit(fp, loc)
        np.testing.assert_allclose(
            a.predict(fp), b.predict(fp)
        )
