"""Fitted-estimator persistence: exact predict parity after reload."""

import numpy as np
import pytest

from repro.exceptions import ArtifactError, PositioningError
from repro.positioning import (
    KNNEstimator,
    RandomForestEstimator,
    RegressionTree,
    WKNNEstimator,
    load_estimator,
    save_estimator,
)


@pytest.fixture
def training_data():
    rng = np.random.default_rng(11)
    fp = rng.uniform(-95, -40, size=(50, 9))
    loc = rng.uniform(0, 25, size=(50, 2))
    queries = rng.uniform(-95, -40, size=(12, 9))
    return fp, loc, queries


@pytest.mark.parametrize(
    "estimator",
    [
        KNNEstimator(k=4),
        WKNNEstimator(k=5, eps=1e-5),
        RandomForestEstimator(n_trees=6, max_depth=5, seed=2),
    ],
    ids=["knn", "wknn", "rf"],
)
def test_round_trip_exact(estimator, training_data, tmp_path):
    fp, loc, queries = training_data
    estimator.fit(fp, loc)
    expected = estimator.predict(queries, squeeze=False)
    path = tmp_path / "est.npz"
    estimator.save(path)
    loaded = load_estimator(path)
    assert type(loaded) is type(estimator)
    assert loaded.fitted
    np.testing.assert_array_equal(
        loaded.predict(queries, squeeze=False), expected
    )


def test_hyperparameters_survive(training_data, tmp_path):
    fp, loc, _ = training_data
    est = WKNNEstimator(k=7, eps=1e-4).fit(fp, loc)
    est.save(tmp_path / "w.npz")
    loaded = load_estimator(tmp_path / "w.npz")
    assert loaded.k == 7 and loaded.eps == 1e-4


def test_unfitted_save_rejected(tmp_path):
    with pytest.raises(PositioningError, match="not fitted"):
        save_estimator(KNNEstimator(), tmp_path / "e.npz")


def test_unknown_kind_rejected(tmp_path):
    from repro.artifacts import Artifact, save_artifact

    path = tmp_path / "weird.npz"
    save_artifact(
        Artifact(kind="positioning.svm", arrays={"w": np.ones(2)}),
        path,
    )
    with pytest.raises(ArtifactError, match="unknown estimator"):
        load_estimator(path)


class TestTreeArrays:
    def test_round_trip(self, training_data):
        fp, loc, queries = training_data
        tree = RegressionTree(
            max_depth=5, rng=np.random.default_rng(3)
        ).fit(fp, loc)
        rebuilt = RegressionTree.from_arrays(tree.to_arrays())
        np.testing.assert_array_equal(
            rebuilt.predict(queries), tree.predict(queries)
        )

    def test_unfitted_rejected(self):
        with pytest.raises(PositioningError, match="not fitted"):
            RegressionTree().to_arrays()

    def test_cyclic_arrays_rejected(self):
        """Crafted self-referencing node data must not hang loading."""
        cyclic = {
            "feature": np.array([0]),
            "threshold": np.array([0.5]),
            "left": np.array([0]),  # points back at itself
            "right": np.array([0]),
            "value": np.full((1, 2), np.nan),
        }
        with pytest.raises(PositioningError, match="revisit"):
            RegressionTree.from_arrays(cyclic)

    def test_single_leaf_tree(self):
        # Constant targets collapse to a single leaf node.
        x = np.ones((5, 3))
        y = np.tile([2.0, 3.0], (5, 1))
        tree = RegressionTree().fit(x, y)
        rebuilt = RegressionTree.from_arrays(tree.to_arrays())
        np.testing.assert_allclose(
            rebuilt.predict(np.zeros((2, 3))), [[2.0, 3.0]] * 2
        )
