"""Batched estimator predictions match the per-query reference loop."""

import numpy as np
import pytest

from repro.exceptions import PositioningError
from repro.positioning import (
    KNNEstimator,
    RandomForestEstimator,
    WKNNEstimator,
)


def knn_reference(est, queries):
    """The pre-refactor per-query KNN loop."""
    k = min(est.k, est._fp.shape[0])
    out = np.empty((queries.shape[0], 2))
    for i, q in enumerate(queries):
        d = np.linalg.norm(est._fp - q, axis=1)
        nearest = np.argpartition(d, k - 1)[:k]
        out[i] = est._loc[nearest].mean(axis=0)
    return out


def wknn_reference(est, queries):
    """The pre-refactor per-query WKNN loop."""
    k = min(est.k, est._fp.shape[0])
    out = np.empty((queries.shape[0], 2))
    for i, q in enumerate(queries):
        d = np.linalg.norm(est._fp - q, axis=1)
        nearest = np.argpartition(d, k - 1)[:k]
        w = 1.0 / (d[nearest] + est.eps)
        out[i] = (w[:, None] * est._loc[nearest]).sum(axis=0) / w.sum()
    return out


def random_venue(rng, n=120, d=25):
    """A random radio map + online queries in the RSSI range."""
    fp = rng.uniform(-95.0, -30.0, size=(n, d))
    loc = rng.uniform(0.0, 60.0, size=(n, 2))
    queries = rng.uniform(-95.0, -30.0, size=(40, d))
    return fp, loc, queries


class TestBatchedParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_knn_matches_reference(self, seed, k):
        fp, loc, queries = random_venue(np.random.default_rng(seed))
        est = KNNEstimator(k=k).fit(fp, loc)
        np.testing.assert_allclose(
            est.predict(queries), knn_reference(est, queries), atol=1e-8
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_wknn_matches_reference(self, seed, k):
        fp, loc, queries = random_venue(np.random.default_rng(seed))
        est = WKNNEstimator(k=k).fit(fp, loc)
        np.testing.assert_allclose(
            est.predict(queries), wknn_reference(est, queries), atol=1e-8
        )

    def test_k_larger_than_map(self):
        fp, loc, queries = random_venue(np.random.default_rng(3), n=5)
        est = KNNEstimator(k=100).fit(fp, loc)
        np.testing.assert_allclose(
            est.predict(queries), knn_reference(est, queries), atol=1e-8
        )


class TestShapeContract:
    @pytest.mark.parametrize(
        "factory", [KNNEstimator, WKNNEstimator, RandomForestEstimator]
    )
    def test_single_query_squeezes(self, factory, rng):
        fp, loc, queries = random_venue(rng, n=30)
        est = factory().fit(fp, loc)
        single = est.predict(queries[0])
        assert single.shape == (2,)
        kept = est.predict(queries[0], squeeze=False)
        assert kept.shape == (1, 2)
        np.testing.assert_allclose(single, kept[0])

    @pytest.mark.parametrize(
        "factory", [KNNEstimator, WKNNEstimator, RandomForestEstimator]
    )
    def test_empty_batch(self, factory, rng):
        fp, loc, _ = random_venue(rng, n=30)
        est = factory().fit(fp, loc)
        assert est.predict(np.empty((0, fp.shape[1]))).shape == (0, 2)

    @pytest.mark.parametrize(
        "factory", [KNNEstimator, WKNNEstimator, RandomForestEstimator]
    )
    def test_unfitted_raises_clear_error(self, factory):
        with pytest.raises(PositioningError, match="not fitted"):
            factory().predict(np.zeros(4))

    def test_dimension_mismatch_rejected(self, rng):
        fp, loc, _ = random_venue(rng, n=30, d=10)
        est = KNNEstimator().fit(fp, loc)
        with pytest.raises(PositioningError):
            est.predict(np.zeros((2, 11)))
