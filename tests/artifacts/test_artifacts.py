"""Artifact format: round trips, validation, and the keyed store."""

import json

import numpy as np
import pytest

from repro.artifacts import (
    SCHEMA_VERSION,
    Artifact,
    ArtifactStore,
    content_hash,
    load_artifact,
    merge_prefixed,
    pack_ragged,
    save_artifact,
    split_prefixed,
    unpack_ragged,
)
from repro.exceptions import ArtifactError


@pytest.fixture
def artifact():
    rng = np.random.default_rng(7)
    return Artifact(
        kind="test.kind",
        arrays={
            "weights": rng.normal(size=(3, 4)),
            "index": np.arange(5, dtype=np.int64),
        },
        config={"alpha": 0.5, "layers": [3, 4]},
        metrics={"loss": 0.25},
    )


class TestRoundTrip:
    def test_arrays_config_metrics_survive(self, artifact, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(artifact, path)
        back = load_artifact(path, expected_kind="test.kind")
        assert back.kind == "test.kind"
        assert back.config == artifact.config
        assert back.metrics == artifact.metrics
        for name, arr in artifact.arrays.items():
            np.testing.assert_array_equal(back.arrays[name], arr)
            assert back.arrays[name].dtype == arr.dtype

    def test_dotted_array_names(self, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(
            Artifact(
                kind="t", arrays={"model.enc.0.w": np.ones(2)}
            ),
            path,
        )
        back = load_artifact(path)
        assert "model.enc.0.w" in back.arrays

    def test_exact_destination_without_npz_suffix(
        self, artifact, tmp_path
    ):
        """The atomic-rename save lands on exactly the given path."""
        path = tmp_path / "shard.artifact"
        save_artifact(artifact, path)
        assert path.exists()
        assert not path.with_name("shard.artifact.npz").exists()
        assert load_artifact(path).kind == "test.kind"

    def test_no_temp_file_left_behind(self, artifact, tmp_path):
        save_artifact(artifact, tmp_path / "a.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.npz"]

    def test_nan_arrays_hash_stably(self, tmp_path):
        arr = np.array([1.0, np.nan, 3.0])
        path = tmp_path / "a.npz"
        save_artifact(Artifact(kind="t", arrays={"x": arr}), path)
        back = load_artifact(path)  # hash verification must pass
        np.testing.assert_array_equal(back.arrays["x"], arr)


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="no such artifact"):
            load_artifact(tmp_path / "nope.npz")

    def test_kind_mismatch(self, artifact, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(artifact, path)
        with pytest.raises(ArtifactError, match="kind mismatch"):
            load_artifact(path, expected_kind="other.kind")

    def test_not_an_artifact(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, x=np.ones(3))
        with pytest.raises(ArtifactError, match="no manifest"):
            load_artifact(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(ArtifactError, match="unreadable"):
            load_artifact(path)

    def test_schema_version_mismatch(self, artifact, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(artifact, path)
        _rewrite_manifest(
            path, lambda m: m.update(schema_version=SCHEMA_VERSION + 1)
        )
        with pytest.raises(
            ArtifactError, match="unsupported artifact schema version"
        ):
            load_artifact(path)

    def test_tampered_array_fails_hash(self, artifact, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(artifact, path)
        with np.load(path, allow_pickle=True) as data:
            arrays = {
                n: data[n] for n in data.files if n != "__manifest__"
            }
            manifest = str(data["__manifest__"][0])
        arrays["weights"] = arrays["weights"] + 1.0
        np.savez_compressed(
            path,
            **{"__manifest__": np.array([manifest])},
            **arrays,
        )
        with pytest.raises(ArtifactError, match="content-hash"):
            load_artifact(path)

    def test_shape_drift_detected(self, artifact, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(artifact, path)
        _rewrite_manifest(
            path,
            lambda m: m["arrays"]["weights"].update(shape=[4, 3]),
        )
        with pytest.raises(ArtifactError, match="manifest spec"):
            load_artifact(path)

    def test_unserialisable_config_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="JSON"):
            save_artifact(
                Artifact(kind="t", config={"bad": object()}),
                tmp_path / "a.npz",
            )

    def test_reserved_array_name_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="illegal"):
            save_artifact(
                Artifact(kind="t", arrays={"__manifest__": np.ones(1)}),
                tmp_path / "a.npz",
            )

    def test_empty_kind_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="kind"):
            save_artifact(Artifact(kind=""), tmp_path / "a.npz")

    def test_object_array_rejected_at_save(self, tmp_path):
        with pytest.raises(ArtifactError, match="object dtype"):
            save_artifact(
                Artifact(
                    kind="t",
                    arrays={"x": np.array([{"a": 1}], dtype=object)},
                ),
                tmp_path / "a.npz",
            )

    def test_pickle_payload_never_deserialised(self, tmp_path):
        """A smuggled pickled object array fails loading outright."""
        path = tmp_path / "evil.npz"
        np.savez(
            path,
            **{
                "__manifest__": np.array(["{}"]),
                "payload": np.array([object()], dtype=object),
            },
        )
        with pytest.raises(ArtifactError, match="unreadable"):
            load_artifact(path)


def _rewrite_manifest(path, mutate):
    """Reload an artifact file, mutate its manifest dict, rewrite."""
    with np.load(path, allow_pickle=True) as data:
        arrays = {n: data[n] for n in data.files if n != "__manifest__"}
        manifest = json.loads(str(data["__manifest__"][0]))
    mutate(manifest)
    np.savez_compressed(
        path,
        **{
            "__manifest__": np.array(
                [json.dumps(manifest)]
            )
        },
        **arrays,
    )


class TestContentHash:
    def test_sensitive_to_values_and_names(self):
        a = {"x": np.ones(3)}
        assert content_hash(a, {}) != content_hash(
            {"x": np.zeros(3)}, {}
        )
        assert content_hash(a, {}) != content_hash(
            {"y": np.ones(3)}, {}
        )
        assert content_hash(a, {}) != content_hash(a, {"k": 1})

    def test_order_independent(self):
        one = {"a": np.ones(2), "b": np.zeros(2)}
        two = {"b": np.zeros(2), "a": np.ones(2)}
        assert content_hash(one, {}) == content_hash(two, {})


class TestPrefixHelpers:
    def test_merge_and_split_inverse(self):
        out = {}
        merge_prefixed(out, "m.", {"w": np.ones(2), "b": np.zeros(2)})
        assert set(out) == {"m.w", "m.b"}
        back = split_prefixed(out, "m.")
        assert set(back) == {"w", "b"}

    def test_duplicate_merge_rejected(self):
        out = {"m.w": np.ones(2)}
        with pytest.raises(ArtifactError, match="duplicate"):
            merge_prefixed(out, "m.", {"w": np.zeros(2)})


class TestRaggedPack:
    def test_round_trip(self):
        rng = np.random.default_rng(2)
        groups = [
            {"a": rng.normal(size=(t, 3)), "b": np.arange(t)}
            for t in (2, 5, 1)
        ]
        back = unpack_ragged(pack_ragged(groups))
        assert len(back) == 3
        for orig, rebuilt in zip(groups, back):
            np.testing.assert_array_equal(rebuilt["a"], orig["a"])
            np.testing.assert_array_equal(rebuilt["b"], orig["b"])

    def test_empty_rejected(self):
        with pytest.raises(ArtifactError, match="nothing to pack"):
            pack_ragged([])

    def test_key_mismatch_rejected(self):
        with pytest.raises(ArtifactError, match="share key sets"):
            pack_ragged([{"a": np.ones(2)}, {"b": np.ones(2)}])

    def test_inconsistent_group_sizes_rejected(self):
        with pytest.raises(ArtifactError, match="axis-0"):
            pack_ragged([{"a": np.ones(2), "b": np.ones(3)}])

    def test_corrupt_lengths_rejected(self):
        packed = pack_ragged([{"a": np.ones(2)}, {"a": np.ones(3)}])
        packed["lengths"] = np.array([2, 4])
        with pytest.raises(ArtifactError, match="recorded"):
            unpack_ragged(packed)

    def test_missing_lengths_rejected(self):
        with pytest.raises(ArtifactError, match="lengths"):
            unpack_ragged({"a": np.ones(3)})


class TestStore:
    def test_save_load_exists_keys(self, artifact, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert not store.exists("kaide/shard")
        store.save("kaide/shard", artifact)
        assert store.exists("kaide/shard")
        assert store.keys() == ["kaide/shard"]
        back = store.load("kaide/shard", expected_kind="test.kind")
        np.testing.assert_array_equal(
            back.arrays["weights"], artifact.arrays["weights"]
        )

    def test_delete(self, artifact, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.save("k", artifact)
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.keys() == []

    def test_dotted_key_keeps_tail(self, artifact, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.save("model.v2", artifact)
        assert store.keys() == ["model.v2"]
        assert store.load("model.v2").kind == "test.kind"

    def test_illegal_keys_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for key in ("../escape", "a//b", "", "a/../b"):
            with pytest.raises(ArtifactError, match="illegal"):
                store.path_for(key)
