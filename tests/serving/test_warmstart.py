"""Warm-start serving: shard artifacts, reload, and the CLI round trip.

The acceptance contract: a model trained via ``python -m repro train``
must be loadable by :class:`PositioningService` in a fresh process and
produce positioning estimates bit-identical (to 1e-8) to the
in-process pipeline; corrupted or version-mismatched artifacts raise a
typed error.
"""

import json

import numpy as np
import pytest

from repro.bisim import BiSIMConfig
from repro.cli import build_shard, main
from repro.core import TopoACDifferentiator
from repro.exceptions import ArtifactError, ServingError
from repro.experiments import PRESETS
from repro.positioning import KNNEstimator, WKNNEstimator
from repro.serving import PositioningService, VenueShard


def scans(dataset, n, seed):
    rng = np.random.default_rng(seed)
    rps = dataset.venue.reference_points
    return np.stack(
        [
            dataset.channel.measure(rps[i % len(rps)], rng).rssi
            for i in range(n)
        ]
    )


@pytest.fixture(scope="module")
def mean_fill_shard(kaide_smoke):
    return VenueShard.build(
        "kaide",
        kaide_smoke.radio_map,
        TopoACDifferentiator(entities=kaide_smoke.venue.plan.entities),
        estimator=WKNNEstimator(),
    )


class TestShardRoundTrip:
    def test_mean_fill_shard_exact(
        self, mean_fill_shard, kaide_smoke, tmp_path
    ):
        queries = scans(kaide_smoke, 8, 0)
        expected = mean_fill_shard.locate(queries)
        path = tmp_path / "shard.npz"
        mean_fill_shard.save(path)
        loaded = VenueShard.load(path)
        assert loaded.key == "kaide"
        assert loaded.n_aps == mean_fill_shard.n_aps
        np.testing.assert_array_equal(loaded.locate(queries), expected)

    def test_bisim_shard_exact(self, kaide_smoke, tmp_path):
        shard = VenueShard.build(
            "kaide",
            kaide_smoke.radio_map,
            TopoACDifferentiator(
                entities=kaide_smoke.venue.plan.entities
            ),
            estimator=WKNNEstimator(),
            bisim_config=BiSIMConfig(hidden_size=8, epochs=2),
        )
        queries = scans(kaide_smoke, 6, 1)
        expected = shard.locate(queries)
        path = tmp_path / "shard.npz"
        shard.save(path)
        loaded = VenueShard.load(path)
        assert loaded.online_imputer is not None
        np.testing.assert_array_equal(loaded.locate(queries), expected)

    def test_key_override(self, mean_fill_shard, tmp_path):
        path = tmp_path / "shard.npz"
        mean_fill_shard.save(path)
        loaded = VenueShard.load(path, key="kaide/f2")
        assert loaded.key == "kaide/f2"

    def test_service_deploy_from_artifact(
        self, mean_fill_shard, kaide_smoke, tmp_path
    ):
        path = tmp_path / "shard.npz"
        mean_fill_shard.save(path)
        service = PositioningService()
        service.deploy_from_artifact(path)
        queries = scans(kaide_smoke, 5, 2)
        np.testing.assert_array_equal(
            service.query_batch(["kaide"] * 5, queries),
            mean_fill_shard.locate(queries),
        )


class TestReload:
    def test_hot_swap_and_cache_invalidation(
        self, kaide_smoke, tmp_path
    ):
        diff = TopoACDifferentiator(
            entities=kaide_smoke.venue.plan.entities
        )
        wknn = VenueShard.build(
            "kaide",
            kaide_smoke.radio_map,
            diff,
            estimator=WKNNEstimator(),
        )
        knn = VenueShard.build(
            "kaide",
            kaide_smoke.radio_map,
            diff,
            estimator=KNNEstimator(k=1),
        )
        knn_path = tmp_path / "knn.npz"
        knn.save(knn_path)

        service = PositioningService(cache_size=64)
        service.register(wknn)
        fp = scans(kaide_smoke, 1, 3)[0]
        service.query("kaide", fp)  # populate the cache
        assert any(k[0] == "kaide" for k in service._cache)

        reloaded = service.reload("kaide", knn_path)
        assert reloaded is service.shard("kaide")
        assert not any(k[0] == "kaide" for k in service._cache)
        np.testing.assert_array_equal(
            service.query("kaide", fp), knn.locate(fp[None, :])[0]
        )

    def test_reload_ap_mismatch_rejected(
        self, mean_fill_shard, longhu_smoke, tmp_path
    ):
        other = VenueShard.build(
            "longhu",
            longhu_smoke.radio_map,
            TopoACDifferentiator(
                entities=longhu_smoke.venue.plan.entities
            ),
            estimator=WKNNEstimator(),
        )
        path = tmp_path / "longhu.npz"
        other.save(path)
        assert other.n_aps != mean_fill_shard.n_aps
        with pytest.raises(ServingError, match="cannot reload"):
            mean_fill_shard.reload(path)

    def test_reload_unknown_venue_rejected(self, tmp_path):
        service = PositioningService()
        with pytest.raises(ServingError, match="unknown venue"):
            service.reload("nowhere", tmp_path / "x.npz")


class TestArtifactSafety:
    def test_corrupted_artifact_rejected(
        self, mean_fill_shard, tmp_path
    ):
        path = tmp_path / "shard.npz"
        mean_fill_shard.save(path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # flip one byte mid-archive
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactError):
            PositioningService().deploy_from_artifact(path)

    def test_version_mismatch_rejected(self, mean_fill_shard, tmp_path):
        path = tmp_path / "shard.npz"
        mean_fill_shard.save(path)
        with np.load(path, allow_pickle=True) as data:
            arrays = {
                n: data[n] for n in data.files if n != "__manifest__"
            }
            manifest = json.loads(str(data["__manifest__"][0]))
        manifest["schema_version"] = 99
        np.savez_compressed(
            path,
            **{
                "__manifest__": np.array(
                    [json.dumps(manifest)]
                )
            },
            **arrays,
        )
        with pytest.raises(ArtifactError, match="schema version"):
            VenueShard.load(path)

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.artifacts import Artifact, save_artifact

        path = tmp_path / "not-a-shard.npz"
        save_artifact(
            Artifact(kind="bisim.trainer", arrays={"x": np.ones(1)}),
            path,
        )
        with pytest.raises(ArtifactError, match="kind mismatch"):
            VenueShard.load(path)


class TestPrecomputeFallback:
    """Shard artifacts carry the build-time imputed tensor; a shard
    that cannot validate it serves through the encoder instead of
    refusing to boot, and the service counts the degradation."""

    @pytest.fixture(scope="class")
    def bisim_artifact(self, kaide_smoke, tmp_path_factory):
        shard = VenueShard.build(
            "kaide",
            kaide_smoke.radio_map,
            TopoACDifferentiator(
                entities=kaide_smoke.venue.plan.entities
            ),
            estimator=WKNNEstimator(),
            bisim_config=BiSIMConfig(hidden_size=8, epochs=2),
        )
        path = tmp_path_factory.mktemp("shards") / "bisim.npz"
        shard.save(path)
        return shard, path

    @staticmethod
    def resave(path, out, *, drop=(), config_update=None):
        from repro.artifacts import load_artifact, save_artifact

        artifact = load_artifact(path)
        for name in drop:
            artifact.arrays.pop(name, None)
            artifact.config.pop(name, None)
        if config_update:
            artifact.config["precomputed"].update(config_update)
        save_artifact(artifact, out)
        return out

    def test_valid_artifact_uses_precomputed_tensor(
        self, bisim_artifact
    ):
        from repro.serving import MapCompletion

        shard, path = bisim_artifact
        loaded = VenueShard.load(path)
        assert isinstance(loaded.completion, MapCompletion)
        assert not loaded.precompute_fallback
        service = PositioningService()
        service.register(loaded)
        assert service.stats.precompute_fallbacks == 0

    def test_hash_mismatch_falls_back_to_encoder(
        self, bisim_artifact, kaide_smoke, tmp_path
    ):
        from repro.serving import EncoderCompletion

        shard, path = bisim_artifact
        bad = self.resave(
            path,
            tmp_path / "bad-hash.npz",
            config_update={"sha256": "0" * 64},
        )
        service = PositioningService()
        loaded = service.deploy_from_artifact(bad)
        assert loaded.precompute_fallback
        assert isinstance(loaded.completion, EncoderCompletion)
        assert loaded.completion.fallback
        assert service.stats.precompute_fallbacks == 1
        # Degraded but serving: the encoder path is the PR-5 pipeline.
        queries = scans(kaide_smoke, 5, 7)
        out = service.query_batch(["kaide"] * 5, queries)
        assert np.isfinite(out).all()

    def test_shape_mismatch_falls_back(self, bisim_artifact, tmp_path):
        shard, path = bisim_artifact
        bad = self.resave(
            path,
            tmp_path / "bad-shape.npz",
            config_update={"shape": [1, 1]},
        )
        loaded = VenueShard.load(bad)
        assert loaded.precompute_fallback

    def test_legacy_bisim_artifact_counts_as_fallback(
        self, bisim_artifact, tmp_path
    ):
        shard, path = bisim_artifact
        legacy = self.resave(
            path, tmp_path / "legacy.npz", drop=("precomputed",)
        )
        service = PositioningService()
        loaded = service.deploy_from_artifact(legacy)
        assert loaded.precompute_fallback
        assert service.stats.precompute_fallbacks == 1

    def test_mean_fill_artifact_is_not_a_fallback(
        self, mean_fill_shard, tmp_path
    ):
        path = tmp_path / "mean.npz"
        mean_fill_shard.save(path)
        service = PositioningService()
        loaded = service.deploy_from_artifact(path)
        assert not loaded.precompute_fallback
        assert service.stats.precompute_fallbacks == 0

    def test_reload_counts_fallback(
        self, bisim_artifact, mean_fill_shard, tmp_path
    ):
        shard, path = bisim_artifact
        bad = self.resave(
            path,
            tmp_path / "bad-reload.npz",
            config_update={"sha256": "f" * 64},
        )
        service = PositioningService()
        service.register(mean_fill_shard)
        assert service.stats.precompute_fallbacks == 0
        service.reload("kaide", bad)
        assert service.stats.precompute_fallbacks == 1
        assert "precompute fallbacks" in service.stats.render()


class TestCliTrainRoundTrip:
    """The acceptance path: CLI-trained artifact == in-process pipeline."""

    def test_train_serve_parity(self, tmp_path, capsys):
        path = tmp_path / "kaide-shard.npz"
        assert (
            main(
                [
                    "train",
                    "--venue",
                    "kaide",
                    "--preset",
                    "smoke",
                    "--out",
                    str(path),
                    "--epochs",
                    "2",
                    "--hidden-size",
                    "8",
                ]
            )
            == 0
        )
        assert "trained kaide" in capsys.readouterr().out
        assert path.exists()

        # In-process reference: the same deterministic offline pipeline.
        config = PRESETS["smoke"]
        reference = build_shard(
            "kaide",
            config,
            estimator_name="wknn",
            bisim_config=BiSIMConfig(
                hidden_size=8, epochs=2, batch_size=config.batch_size
            ),
        )

        # "Fresh process" consumer: a service booted from the artifact.
        service = PositioningService()
        service.deploy_from_artifact(path)

        from repro.experiments import get_dataset

        dataset = get_dataset("kaide", config)
        queries = scans(dataset, 10, 4)
        warm = service.query_batch(["kaide"] * 10, queries)
        cold = reference.locate(queries)
        np.testing.assert_allclose(warm, cold, atol=1e-8)

    def test_train_requires_out(self):
        with pytest.raises(SystemExit):
            main(["train", "--venue", "kaide"])

    def test_impute_writes_complete_map(self, tmp_path, capsys):
        shard_path = tmp_path / "shard.npz"
        map_path = tmp_path / "imputed.npz"
        main(
            [
                "train",
                "--venue",
                "kaide",
                "--preset",
                "smoke",
                "--out",
                str(shard_path),
                "--epochs",
                "1",
                "--hidden-size",
                "8",
            ]
        )
        assert (
            main(
                [
                    "impute",
                    "--venue",
                    "kaide",
                    "--preset",
                    "smoke",
                    "--model",
                    str(shard_path),
                    "--out",
                    str(map_path),
                ]
            )
            == 0
        )
        assert "imputed kaide" in capsys.readouterr().out
        from repro.radiomap import load_radio_map

        imputed = load_radio_map(map_path)
        assert np.isfinite(imputed.fingerprints).all()
        assert np.isfinite(imputed.rps).all()

        # Venue mismatch: longhu has a different AP count, so reusing
        # the kaide artifact must fail with a one-line typed error,
        # not a numpy broadcast crash.
        assert (
            main(
                [
                    "impute",
                    "--venue",
                    "longhu",
                    "--preset",
                    "smoke",
                    "--model",
                    str(shard_path),
                    "--out",
                    str(tmp_path / "wrong.npz"),
                ]
            )
            == 1
        )
        assert "APs" in capsys.readouterr().err

    def test_impute_rejects_mean_fill_artifact(self, tmp_path, capsys):
        shard_path = tmp_path / "meanfill.npz"
        main(
            [
                "train",
                "--venue",
                "kaide",
                "--preset",
                "smoke",
                "--mean-fill",
                "--out",
                str(shard_path),
            ]
        )
        assert (
            main(
                [
                    "impute",
                    "--venue",
                    "kaide",
                    "--preset",
                    "smoke",
                    "--model",
                    str(shard_path),
                    "--out",
                    str(tmp_path / "m.npz"),
                ]
            )
            == 1
        )
        assert "mean-fill" in capsys.readouterr().err
