"""ShardKey: the ``"venue/floor"`` addressing scheme."""

import pytest

from repro.exceptions import ServingError
from repro.serving import KEY_SEPARATOR, ShardKey, coerce_key


class TestShardKey:
    def test_bare_venue(self):
        key = ShardKey("kaide")
        assert key.venue == "kaide"
        assert key.floor is None
        assert str(key) == "kaide"

    def test_floor_key(self):
        key = ShardKey("kaide", "f2")
        assert str(key) == "kaide/f2"
        assert key.render() == f"kaide{KEY_SEPARATOR}f2"

    def test_parse_bare(self):
        assert ShardKey.parse("kaide") == ShardKey("kaide")

    def test_parse_floor(self):
        assert ShardKey.parse("kaide/f2") == ShardKey("kaide", "f2")

    def test_parse_splits_on_first_separator(self):
        """Nested floor paths stay in the floor part: the venue name
        can never contain the separator."""
        key = ShardKey.parse("mall/wing-b/f3")
        assert key.venue == "mall"
        assert key.floor == "wing-b/f3"
        assert str(key) == "mall/wing-b/f3"

    def test_parse_round_trips(self):
        for text in ("kaide", "kaide/f1", "mall/wing-b/f3"):
            assert str(ShardKey.parse(text)) == text

    def test_with_floor(self):
        key = ShardKey("kaide").with_floor("f1")
        assert key == ShardKey("kaide", "f1")

    def test_empty_venue_rejected(self):
        with pytest.raises(ServingError):
            ShardKey("")

    def test_separator_in_venue_rejected(self):
        with pytest.raises(ServingError):
            ShardKey("kaide/f1")

    @pytest.mark.parametrize(
        "bad", ["", "/f1", "kaide/", "kaide//f1", "/"]
    )
    def test_parse_malformed_rejected(self, bad):
        with pytest.raises(ServingError):
            ShardKey.parse(bad)

    def test_keys_are_hashable_and_frozen(self):
        key = ShardKey("kaide", "f1")
        assert key in {ShardKey("kaide", "f1")}
        with pytest.raises(Exception):
            key.venue = "other"


class TestCoerceKey:
    def test_plain_string_passes_through(self):
        assert coerce_key("kaide") == "kaide"
        assert coerce_key("kaide/f2") == "kaide/f2"

    def test_shard_key_renders(self):
        assert coerce_key(ShardKey("kaide", "f2")) == "kaide/f2"

    def test_malformed_string_rejected(self):
        with pytest.raises(ServingError):
            coerce_key("kaide//f1")

    def test_non_key_rejected(self):
        with pytest.raises(ServingError):
            coerce_key(7)
