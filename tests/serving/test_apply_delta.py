"""Hot delta application: parity, targeted invalidation, liveness."""

import threading

import numpy as np
import pytest

from repro.bisim import BiSIMConfig
from repro.core import MNAROnlyDifferentiator, TopoACDifferentiator
from repro.exceptions import ServingError
from repro.imputers import fill_mnars
from repro.ingest import StreamIngestor, simulate_new_survey
from repro.positioning import WKNNEstimator
from repro.radiomap import RadioMapBuilder, apply_radio_map_delta
from repro.serving import (
    PositioningService,
    ServingPipeline,
    VenueShard,
    scan_pool,
)

ATOL = 1e-9  # the targeted-invalidation keep tolerance


@pytest.fixture(scope="module")
def base(kaide_smoke):
    """Canonically-ordered base map + a fresh survey drop delta."""
    tables = sorted(
        kaide_smoke.survey_tables, key=lambda t: t.path_id
    )
    builder = RadioMapBuilder(tables[0].n_aps)
    for t in tables:
        builder.add_table(t)
    base_map = builder.snapshot()
    ingestor = StreamIngestor(base_map.n_aps)
    for t in simulate_new_survey(kaide_smoke, n_passes=1, seed=21):
        ingestor.ingest_table(t)
    return kaide_smoke, base_map, ingestor.drain()


def aligned_pool(dataset, n, seed=0):
    """Whole-dBm scans: exactly representable at cache_quantum=1."""
    return np.round(
        scan_pool(dataset, n, np.random.default_rng(seed))
    )


class TestShardParity:
    def test_mean_fill_apply_equals_cold_build(self, base):
        """Acceptance: a shard after apply_delta answers identically
        to a shard cold-built from the merged map."""
        dataset, base_map, delta = base
        shard = VenueShard.build(
            "kaide", base_map, MNAROnlyDifferentiator()
        )
        report = shard.apply_delta(delta)
        assert report.epoch == 1 and report.rows == delta.n_rows
        merged = apply_radio_map_delta(base_map, delta)
        cold = VenueShard.build(
            "kaide", merged, MNAROnlyDifferentiator()
        )
        pool = aligned_pool(dataset, 48, seed=1)
        np.testing.assert_array_equal(
            shard.locate(pool), cold.locate(pool)
        )
        np.testing.assert_array_equal(
            shard.radio_map.fingerprints, merged.fingerprints
        )

    def test_topoac_full_refresh_equals_cold_build(self, base):
        """refresh_mask='full' is exact for clustering differentiators."""
        dataset, base_map, delta = base
        shard = VenueShard.build(
            "kaide",
            base_map,
            TopoACDifferentiator(entities=dataset.venue.plan.entities),
        )
        shard.apply_delta(delta, refresh_mask="full")
        cold = VenueShard.build(
            "kaide",
            apply_radio_map_delta(base_map, delta),
            TopoACDifferentiator(entities=dataset.venue.plan.entities),
        )
        pool = aligned_pool(dataset, 48, seed=2)
        np.testing.assert_array_equal(
            shard.locate(pool), cold.locate(pool)
        )

    def test_chained_deltas_accumulate(self, base):
        dataset, base_map, delta = base
        shard = VenueShard.build(
            "kaide", base_map, MNAROnlyDifferentiator()
        )
        shard.apply_delta(delta)
        ingestor = StreamIngestor(base_map.n_aps)
        for t in simulate_new_survey(dataset, n_passes=1, seed=33):
            # Avoid colliding with the first drop's path ids.
            t.path_id += 100
            ingestor.ingest_table(t)
        second = ingestor.drain()
        shard.apply_delta(second)
        assert shard.epoch == 2
        expected = apply_radio_map_delta(
            apply_radio_map_delta(base_map, delta), second
        )
        np.testing.assert_array_equal(
            shard.radio_map.fingerprints, expected.fingerprints
        )

    def test_bisim_shard_apply_matches_manual_recompute(self, base):
        """BiSIM shards keep the trained encoder for ingest-time
        refresh; the refreshed precomputed map, index refresh and
        estimator refit must equal a full recompute with the same
        trainer."""
        dataset, base_map, delta = base
        shard = VenueShard.build(
            "kaide",
            base_map,
            MNAROnlyDifferentiator(),
            bisim_config=BiSIMConfig(hidden_size=10, epochs=2),
        )
        trainer = shard.online_imputer.trainer
        shard.apply_delta(delta)

        merged = apply_radio_map_delta(base_map, delta)
        mask = MNAROnlyDifferentiator().differentiate(merged)
        filled, amended = fill_mnars(merged, mask)
        from repro.bisim import OnlineImputer
        from repro.serving import MapCompletion

        online = OnlineImputer(trainer)
        online.index(filled, amended)
        fp_c, rps_c = trainer.impute(filled, amended)
        estimator = WKNNEstimator().fit(fp_c, rps_c)

        # Serving completes queries against the precomputed imputed
        # map (masked KNN), not the encoder — mirror that here.
        fills = np.nanmean(
            np.where(np.isfinite(fp_c), fp_c, np.nan), axis=0
        )
        completion = MapCompletion(fp_c, fills)
        np.testing.assert_array_equal(
            np.asarray(shard.completion.precomputed), fp_c
        )

        pool = aligned_pool(dataset, 24, seed=3)
        expected = estimator.predict(
            completion.complete(pool), squeeze=False
        )
        np.testing.assert_array_equal(shard.locate(pool), expected)


class TestServiceApply:
    def test_idempotent_redelivery_keeps_all_keys(self, base):
        """A delta re-delivering a path unchanged leaves every cached
        answer valid — targeted invalidation keeps them all."""
        dataset, base_map, _ = base
        tables = sorted(
            dataset.survey_tables, key=lambda t: t.path_id
        )
        service = PositioningService(cache_quantum=1.0)
        service.deploy("kaide", base_map, MNAROnlyDifferentiator())
        pool = aligned_pool(dataset, 64, seed=4)
        before = service.query_batch(["kaide"] * len(pool), pool)
        cached = len(service._cache)
        assert cached > 0

        redelivery = RadioMapBuilder(base_map.n_aps)
        redelivery.add_table(tables[0])
        report = service.apply_delta("kaide", redelivery.drain_delta())
        assert report.kept == cached
        assert report.invalidated == 0
        after = service.query_batch(["kaide"] * len(pool), pool)
        np.testing.assert_array_equal(before, after)
        assert service.stats.deltas_applied == 1
        assert service.stats.keys_kept == cached

    def test_targeted_invalidation_only_affected(self, base):
        """Kept keys answer within tolerance of the new pipeline;
        moved answers are invalidated and recomputed fresh."""
        dataset, base_map, delta = base
        service = PositioningService(cache_quantum=1.0)
        service.deploy("kaide", base_map, MNAROnlyDifferentiator())
        pool = aligned_pool(dataset, 96, seed=5)
        service.query_batch(["kaide"] * len(pool), pool)
        cached = len(service._cache)

        report = service.apply_delta("kaide", delta)
        assert report.kept + report.invalidated == cached
        assert report.invalidated > 0  # new rows moved some answers
        # Every answer served now matches a fresh compute through the
        # new pipeline to within the keep tolerance.
        after = service.query_batch(["kaide"] * len(pool), pool)
        direct = service.shard("kaide").locate(pool)
        np.testing.assert_allclose(after, direct, rtol=0, atol=ATOL)

    def test_venue_invalidation_drops_everything(self, base):
        dataset, base_map, delta = base
        service = PositioningService(cache_quantum=1.0)
        service.deploy("kaide", base_map, MNAROnlyDifferentiator())
        pool = aligned_pool(dataset, 32, seed=6)
        service.query_batch(["kaide"] * len(pool), pool)
        cached = len(service._cache)
        report = service.apply_delta(
            "kaide", delta, invalidate="venue"
        )
        assert report.invalidated == cached
        assert report.kept == 0
        assert not service._cache

    def test_other_venue_cache_untouched(self, base, longhu_smoke):
        dataset, base_map, delta = base
        service = PositioningService(cache_quantum=1.0)
        service.deploy("kaide", base_map, MNAROnlyDifferentiator())
        service.deploy(
            "longhu", longhu_smoke.radio_map, MNAROnlyDifferentiator()
        )
        other = aligned_pool(longhu_smoke, 16, seed=7)
        service.query_batch(["longhu"] * len(other), other)
        other_keys = {k for k in service._cache if k[0] == "longhu"}
        service.apply_delta("kaide", delta)
        assert other_keys <= set(service._cache)

    def test_epoch_bump_and_stats(self, base):
        dataset, base_map, delta = base
        service = PositioningService()
        shard = service.deploy(
            "kaide", base_map, MNAROnlyDifferentiator()
        )
        report = service.apply_delta("kaide", delta)
        assert shard.epoch == 1
        assert report.epoch == 1
        assert service.stats.deltas_applied == 1
        assert service.stats.delta_rows == delta.n_rows
        assert "deltas applied=1" in service.stats.render()


class TestApplyErrors:
    def test_warm_started_shard_needs_source(self, base, tmp_path):
        dataset, base_map, delta = base
        shard = VenueShard.build(
            "kaide", base_map, MNAROnlyDifferentiator()
        )
        path = tmp_path / "shard.npz"
        shard.save(path)
        loaded = VenueShard.load(path)
        assert not loaded.supports_deltas
        with pytest.raises(ServingError, match="attach_source"):
            loaded.apply_delta(delta)

    def test_attach_source_enables_deltas(self, base, tmp_path):
        dataset, base_map, delta = base
        shard = VenueShard.build(
            "kaide", base_map, MNAROnlyDifferentiator()
        )
        path = tmp_path / "shard.npz"
        shard.save(path)
        loaded = VenueShard.load(path)
        loaded.attach_source(base_map, MNAROnlyDifferentiator())
        assert loaded.supports_deltas
        loaded.apply_delta(delta)
        shard.apply_delta(delta)
        pool = aligned_pool(dataset, 16, seed=8)
        np.testing.assert_array_equal(
            loaded.locate(pool), shard.locate(pool)
        )

    def test_detach_source_frees_and_disables(self, base):
        dataset, base_map, delta = base
        shard = VenueShard.build(
            "kaide", base_map, MNAROnlyDifferentiator()
        )
        shard.detach_source()
        assert shard.radio_map is None
        with pytest.raises(ServingError):
            shard.apply_delta(delta)

    def test_ap_mismatch_rejected(self, base):
        dataset, base_map, _ = base
        shard = VenueShard.build(
            "kaide", base_map, MNAROnlyDifferentiator()
        )
        from repro.survey import RSSIRecord

        builder = RadioMapBuilder(base_map.n_aps + 1)
        builder.add_record(
            0, RSSIRecord(time=0.0, readings={0: -60.0})
        )
        with pytest.raises(ServingError, match="APs"):
            shard.apply_delta(builder.drain_delta())

    def test_concurrent_swap_conflict_raises(self, base):
        """A pipeline swap during preparation aborts the install —
        the winner's data must never be silently discarded."""
        dataset, base_map, delta = base
        service = PositioningService()
        shard = service.deploy(
            "kaide", base_map, MNAROnlyDifferentiator()
        )
        prepared = shard.prepare_delta(delta)
        original_prepare = VenueShard.prepare_delta

        def racing_prepare(self_, d, **kw):
            # Simulate a reload/apply winning the race mid-prepare.
            self_._install_update(prepared)
            return original_prepare(self_, d, **kw)

        try:
            VenueShard.prepare_delta = racing_prepare
            with pytest.raises(ServingError, match="changed while"):
                service.apply_delta("kaide", delta)
        finally:
            VenueShard.prepare_delta = original_prepare
        # The racing install survived; only its epoch advanced.
        assert shard.epoch == 1
        assert service.stats.deltas_applied == 0

    def test_bad_modes_rejected(self, base):
        dataset, base_map, delta = base
        service = PositioningService()
        service.deploy("kaide", base_map, MNAROnlyDifferentiator())
        with pytest.raises(ServingError, match="invalidate"):
            service.apply_delta("kaide", delta, invalidate="nope")
        with pytest.raises(ServingError, match="refresh_mask"):
            service.apply_delta("kaide", delta, refresh_mask="nope")


@pytest.mark.slow
class TestApplyUnderTraffic:
    """Acceptance: applies under sustained traffic never serve a
    stale-epoch answer and only invalidate affected keys."""

    def test_concurrent_queries_and_applies(self, kaide_smoke):
        dataset = kaide_smoke
        tables = sorted(
            dataset.survey_tables, key=lambda t: t.path_id
        )
        builder = RadioMapBuilder(tables[0].n_aps)
        for t in tables:
            builder.add_table(t)
        base_map = builder.snapshot()

        service = PositioningService(cache_quantum=1.0)
        service.deploy(
            "kaide",
            base_map,
            TopoACDifferentiator(entities=dataset.venue.plan.entities),
        )
        pool = aligned_pool(dataset, 128, seed=11)

        # Pre-build a chain of deltas (one new path each).
        deltas = []
        ingestor = StreamIngestor(base_map.n_aps)
        new_tables = []
        round_ = 0
        while len(new_tables) < 5:
            new_tables.extend(
                simulate_new_survey(dataset, n_passes=1, seed=50 + round_)
            )
            round_ += 1
        next_id = int(base_map.path_ids.max()) + 1
        for i, table in enumerate(new_tables[:5]):
            table.path_id = next_id + i
            ingestor.ingest_table(table)
            deltas.append(ingestor.drain())

        errors = []
        stop = threading.Event()
        stale = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                rows = rng.integers(0, len(pool), size=16)
                try:
                    out = service.query_batch(
                        ["kaide"] * len(rows), pool[rows]
                    )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                if not np.isfinite(out).all():
                    errors.append(ValueError("non-finite answer"))
                    return

        def ingest_driver():
            try:
                for delta in deltas:
                    service.apply_delta("kaide", delta)
                    # Immediately after an apply returns, answers must
                    # come from the new pipeline (within the keep
                    # tolerance) — never from a stale epoch.
                    probe = pool[:32]
                    served = service.query_batch(
                        ["kaide"] * len(probe), probe
                    )
                    direct = service.shard("kaide").locate(probe)
                    if not np.allclose(
                        served, direct, rtol=0, atol=ATOL
                    ):
                        stale.append(
                            np.abs(served - direct).max()
                        )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with ServingPipeline(service, max_batch=64) as pipeline:
            # Extra concurrent pressure through the pipeline too.
            def pipeline_worker(seed):
                rng = np.random.default_rng(seed)
                while not stop.is_set():
                    row = int(rng.integers(0, len(pool)))
                    try:
                        ticket = pipeline.submit("kaide", pool[row])
                        ticket.result(timeout=30.0)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            threads = [
                threading.Thread(target=worker, args=(100 + i,))
                for i in range(3)
            ] + [
                threading.Thread(target=pipeline_worker, args=(200,))
            ]
            driver = threading.Thread(target=ingest_driver)
            for t in threads:
                t.start()
            driver.start()
            driver.join(timeout=120)
            stop.set()
            for t in threads:
                t.join(timeout=30)

        assert not errors, errors
        assert not stale, f"stale answers after apply: {stale}"
        assert service.stats.deltas_applied == len(deltas)
        shard = service.shard("kaide")
        assert shard.epoch == len(deltas)
        # Final state: the live shard holds exactly the fully-merged
        # map (the TopoAC dirty-path mask refresh is a documented
        # per-path approximation, so answer parity is asserted in the
        # MNAR-only / full-refresh tests above, not here).
        merged = base_map
        for delta in deltas:
            merged = apply_radio_map_delta(merged, delta)
        assert shard.radio_map.n_records == merged.n_records
        np.testing.assert_array_equal(
            shard.radio_map.fingerprints, merged.fingerprints
        )