"""ServingPipeline: micro-batching, coalescing, fast path, lifecycle."""

import threading
import time

import numpy as np
import pytest

from repro.core import MAROnlyDifferentiator
from repro.exceptions import ServingError
from repro.positioning import KNNEstimator, WKNNEstimator
from repro.serving import PositioningService, ServingPipeline


def scans(dataset, n, seed):
    rng = np.random.default_rng(seed)
    rps = dataset.venue.reference_points
    return np.stack(
        [
            dataset.channel.measure(rps[i % len(rps)], rng).rssi
            for i in range(n)
        ]
    )


@pytest.fixture
def service(kaide_smoke, longhu_smoke):
    svc = PositioningService(cache_size=256)
    for name, ds in (("kaide", kaide_smoke), ("longhu", longhu_smoke)):
        svc.deploy(
            name,
            ds.radio_map,
            MAROnlyDifferentiator(),
            estimator=WKNNEstimator(),
        )
    return svc


class TestLifecycle:
    def test_context_manager_starts_and_stops(self, service):
        with ServingPipeline(service) as pipeline:
            assert pipeline.running
        assert not pipeline.running

    def test_double_start_rejected(self, service):
        with ServingPipeline(service) as pipeline:
            with pytest.raises(ServingError, match="already started"):
                pipeline.start()

    def test_submit_before_start_rejected(self, service, kaide_smoke):
        pipeline = ServingPipeline(service)
        with pytest.raises(ServingError, match="not running"):
            pipeline.submit("kaide", scans(kaide_smoke, 1, 0)[0])

    def test_submit_after_stop_rejected(self, service, kaide_smoke):
        pipeline = ServingPipeline(service)
        with pipeline:
            pass
        with pytest.raises(ServingError, match="not running"):
            pipeline.submit("kaide", scans(kaide_smoke, 1, 0)[0])

    def test_stop_drains_pending(self, service, kaide_smoke):
        """Tickets queued at stop() time still resolve."""
        batch = scans(kaide_smoke, 8, 1)
        pipeline = ServingPipeline(service, max_delay_ms=50.0)
        pipeline.start()
        tickets = pipeline.submit_many("kaide", batch)
        pipeline.stop()
        out = np.stack([t.result(timeout=1.0) for t in tickets])
        assert out.shape == (8, 2)
        assert np.isfinite(out).all()

    def test_invalid_config_rejected(self, service):
        with pytest.raises(ServingError, match="max_batch"):
            ServingPipeline(service, max_batch=0)
        with pytest.raises(ServingError, match="max_delay_ms"):
            ServingPipeline(service, max_delay_ms=-1.0)


class TestCorrectness:
    def test_results_match_direct_query_batch(
        self, service, kaide_smoke
    ):
        batch = scans(kaide_smoke, 16, 2)
        direct = service.shard("kaide").locate(batch)
        with ServingPipeline(service, max_delay_ms=1.0) as pipeline:
            tickets = pipeline.submit_many("kaide", batch)
            out = np.stack([t.result(timeout=5.0) for t in tickets])
        np.testing.assert_allclose(out, direct, atol=1e-8)

    def test_mixed_venues_route_correctly(
        self, service, kaide_smoke, longhu_smoke
    ):
        ka = scans(kaide_smoke, 4, 3)
        lo = scans(longhu_smoke, 4, 4)
        direct_ka = service.shard("kaide").locate(ka)
        direct_lo = service.shard("longhu").locate(lo)
        with ServingPipeline(service, max_delay_ms=1.0) as pipeline:
            tk = pipeline.submit_many("kaide", ka)
            tl = pipeline.submit_many("longhu", lo)
            out_ka = np.stack([t.result(timeout=5.0) for t in tk])
            out_lo = np.stack([t.result(timeout=5.0) for t in tl])
        np.testing.assert_allclose(out_ka, direct_ka, atol=1e-8)
        np.testing.assert_allclose(out_lo, direct_lo, atol=1e-8)

    def test_locate_single_blocking(self, service, kaide_smoke):
        fp = scans(kaide_smoke, 1, 5)[0]
        direct = service.shard("kaide").locate(fp[None, :])[0]
        with ServingPipeline(service, max_delay_ms=1.0) as pipeline:
            out = pipeline.locate("kaide", fp, timeout=5.0)
        np.testing.assert_allclose(out, direct, atol=1e-8)

    def test_concurrent_submitters_all_answered(
        self, service, kaide_smoke
    ):
        """Many threads x many requests: every ticket resolves with a
        finite location and the stats account for every request."""
        n_threads, per_thread = 6, 20
        batch = scans(kaide_smoke, per_thread, 6)
        results = [None] * n_threads

        with ServingPipeline(service, max_delay_ms=0.5) as pipeline:

            def worker(wid):
                tickets = [
                    pipeline.submit("kaide", row) for row in batch
                ]
                results[wid] = np.stack(
                    [t.result(timeout=10.0) for t in tickets]
                )

            threads = [
                threading.Thread(target=worker, args=(w,))
                for w in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        expected = service.shard("kaide").locate(batch)
        for got in results:
            np.testing.assert_allclose(got, expected, atol=1e-8)
        assert pipeline.stats.submitted == n_threads * per_thread
        assert (
            pipeline.stats.fast_path_hits + pipeline.stats.flushed
            == pipeline.stats.submitted
        )


class TestCoalescing:
    def test_queued_requests_coalesce_into_one_batch(
        self, kaide_smoke
    ):
        """Requests submitted while the flusher is blocked flush as
        one micro-batch, not one service batch per request."""
        svc = PositioningService(cache_size=0)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        batch = scans(kaide_smoke, 12, 7)
        pipeline = ServingPipeline(svc, max_delay_ms=500.0)
        tickets = []
        # Queue everything before the flusher exists, then start it:
        # the deadline window is wide, so all rows flush together.
        with pipeline._mu:
            pipeline._started = True
        tickets = pipeline.submit_many("kaide", batch)
        pipeline._thread = threading.Thread(
            target=pipeline._run, daemon=True
        )
        pipeline._thread.start()
        out = np.stack([t.result(timeout=5.0) for t in tickets])
        pipeline.stop()
        assert out.shape == (12, 2)
        assert pipeline.stats.batches == 1
        assert pipeline.stats.largest_batch == 12
        assert svc.stats.batches == 1

    def test_max_batch_splits_flushes(self, kaide_smoke):
        svc = PositioningService(cache_size=0)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        batch = scans(kaide_smoke, 10, 8)
        with ServingPipeline(
            svc, max_batch=4, max_delay_ms=200.0
        ) as pipeline:
            tickets = pipeline.submit_many("kaide", batch)
            for t in tickets:
                t.result(timeout=5.0)
        assert pipeline.stats.batches >= 3  # 10 rows / max_batch 4
        assert pipeline.stats.largest_batch <= 4

    def test_deadline_flush_serves_lone_request(
        self, service, kaide_smoke
    ):
        fp = scans(kaide_smoke, 1, 9)[0]
        with ServingPipeline(service, max_delay_ms=5.0) as pipeline:
            start = time.perf_counter()
            out = pipeline.locate("kaide", fp, timeout=5.0)
            elapsed = time.perf_counter() - start
        assert np.isfinite(out).all()
        assert elapsed < 2.0  # deadline fired, not stuck forever


class TestFastPath:
    def test_cache_hit_resolves_at_submit(self, service, kaide_smoke):
        fp = scans(kaide_smoke, 1, 10)[0]
        with ServingPipeline(service, max_delay_ms=1.0) as pipeline:
            first = pipeline.locate("kaide", fp, timeout=5.0)
            ticket = pipeline.submit("kaide", fp)
            # Resolved synchronously from the cache: done before wait.
            assert ticket.done
            np.testing.assert_allclose(
                ticket.result(), first, atol=1e-8
            )
        assert pipeline.stats.fast_path_hits >= 1

    def test_fast_path_disabled_without_cache(self, kaide_smoke):
        svc = PositioningService(cache_size=0)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        fp = scans(kaide_smoke, 1, 11)[0]
        with ServingPipeline(svc, max_delay_ms=1.0) as pipeline:
            pipeline.locate("kaide", fp, timeout=5.0)
            pipeline.locate("kaide", fp, timeout=5.0)
        assert pipeline.stats.fast_path_hits == 0
        assert pipeline.stats.flushed == 2


class TestValidation:
    def test_unknown_venue_fails_at_submit(self, service, kaide_smoke):
        with ServingPipeline(service) as pipeline:
            with pytest.raises(ServingError, match="unknown venue"):
                pipeline.submit("mall99", scans(kaide_smoke, 1, 12)[0])

    def test_wrong_width_fails_at_submit(self, service):
        with ServingPipeline(service) as pipeline:
            with pytest.raises(ServingError, match="expects"):
                pipeline.submit("kaide", np.zeros(3))

    def test_bad_request_cannot_poison_batch(
        self, service, kaide_smoke
    ):
        """A rejected submit leaves queued good requests unharmed."""
        good = scans(kaide_smoke, 2, 13)
        with ServingPipeline(service, max_delay_ms=2.0) as pipeline:
            t1 = pipeline.submit("kaide", good[0])
            with pytest.raises(ServingError):
                pipeline.submit("kaide", np.zeros(2))
            t2 = pipeline.submit("kaide", good[1])
            assert np.isfinite(t1.result(timeout=5.0)).all()
            assert np.isfinite(t2.result(timeout=5.0)).all()

    def test_result_timeout(self, service):
        """A ticket that can never resolve times out, not deadlocks."""
        from repro.serving import Ticket

        pipeline = ServingPipeline(service, max_delay_ms=1.0)
        ticket = Ticket(pipeline._done_cv)
        with pytest.raises(ServingError, match="timed out"):
            ticket.result(timeout=0.05)
