"""Incremental spatial-index rebuild under hot delta application.

``apply_delta`` refits a clone of the estimator via
``fit_incremental``: clean-path rows keep their bucket assignment and
only dirty-path rows are re-placed.  The index is exact under any
assignment, so an incrementally refreshed shard must answer
bit-identically to one refit from scratch on the merged map.
"""

import numpy as np
import pytest

from repro.bisim import BiSIMConfig, OnlineImputer
from repro.core import MNAROnlyDifferentiator
from repro.imputers import fill_mnars
from repro.ingest import StreamIngestor, simulate_new_survey
from repro.positioning import SpatialIndex, WKNNEstimator
from repro.radiomap import RadioMapBuilder, apply_radio_map_delta
from repro.serving import VenueShard, scan_pool


@pytest.fixture(scope="module")
def base(kaide_smoke):
    tables = sorted(
        kaide_smoke.survey_tables, key=lambda t: t.path_id
    )
    builder = RadioMapBuilder(tables[0].n_aps)
    for t in tables:
        builder.add_table(t)
    base_map = builder.snapshot()
    ingestor = StreamIngestor(base_map.n_aps)
    for t in simulate_new_survey(kaide_smoke, n_passes=1, seed=77):
        ingestor.ingest_table(t)
    return kaide_smoke, base_map, ingestor.drain()


@pytest.fixture(scope="module")
def indexed_shard(base):
    """A BiSIM shard whose estimator always carries a spatial index."""
    _, base_map, _ = base
    return VenueShard.build(
        "kaide",
        base_map,
        MNAROnlyDifferentiator(),
        estimator=WKNNEstimator(spatial_index="on"),
        bisim_config=BiSIMConfig(hidden_size=10, epochs=2),
    )


def pool(dataset, n, seed):
    return scan_pool(dataset, n, np.random.default_rng(seed))


class TestIncrementalIndexRebuild:
    def test_apply_delta_matches_from_scratch_refit(
        self, base, indexed_shard
    ):
        dataset, base_map, delta = base
        shard = indexed_shard
        trainer = shard.online_imputer.trainer
        old_index = shard.estimator.index
        assert old_index is not None
        shard.apply_delta(delta)
        assert shard.estimator.index is not None
        assert shard.estimator.index is not old_index

        # From-scratch reference with the same trained imputer.
        merged = apply_radio_map_delta(base_map, delta)
        mask = MNAROnlyDifferentiator().differentiate(merged)
        filled, amended = fill_mnars(merged, mask)
        online = OnlineImputer(trainer)
        online.index(filled, amended)
        fp_c, rps_c = trainer.impute(filled, amended)
        fresh = WKNNEstimator(spatial_index="on").fit(fp_c, rps_c)

        queries = fp_c[::3]
        np.testing.assert_array_equal(
            shard.estimator.predict(queries, squeeze=False),
            fresh.predict(queries, squeeze=False),
        )

    def test_dirty_path_only_refresh_keeps_clean_buckets(
        self, base, indexed_shard
    ):
        """Rows of paths untouched by the delta keep their bucket;
        the rotation/grid is frozen across the refresh."""
        _, base_map, delta = base
        shard = indexed_shard
        old_index = shard.estimator.index
        old_rows = {
            int(p): np.where(base_map.path_ids == p)[0]
            for p in np.unique(base_map.path_ids)
        }
        shard.apply_delta(delta)
        new_index = shard.estimator.index
        np.testing.assert_array_equal(new_index.mu, old_index.mu)
        np.testing.assert_array_equal(new_index.basis, old_index.basis)

        merged = shard.radio_map
        dirty = {int(p) for p in delta.path_ids}
        for pid in np.unique(merged.path_ids):
            pid = int(pid)
            if pid in dirty or pid not in old_rows:
                continue
            rows = np.where(merged.path_ids == pid)[0]
            np.testing.assert_array_equal(
                new_index.assign[rows],
                old_index.assign[old_rows[pid]],
            )

    def test_identity_refresh_is_a_noop(self):
        rng = np.random.default_rng(41)
        fp = rng.uniform(-95.0, -20.0, size=(1500, 12))
        index = SpatialIndex.build(fp)
        same = index.refreshed(
            fp, np.arange(1500), np.arange(1500)
        )
        np.testing.assert_array_equal(same.assign, index.assign)
        np.testing.assert_array_equal(same.mu, index.mu)
        np.testing.assert_array_equal(same.basis, index.basis)

    def test_redelivered_path_keeps_answers(self, base):
        """A delta re-delivering one path unchanged leaves the served
        locations unchanged up to the re-imputation's reduction-order
        noise (the redelivered path runs through the trainer as a
        sub-map, so BLAS may re-associate sums at the last ulp)."""
        dataset, base_map, _ = base
        shard = VenueShard.build(
            "kaide",
            base_map,
            MNAROnlyDifferentiator(),
            estimator=WKNNEstimator(spatial_index="on"),
            bisim_config=BiSIMConfig(hidden_size=10, epochs=2),
        )
        queries = pool(dataset, 32, seed=42)
        before = shard.locate(queries)
        tables = sorted(
            dataset.survey_tables, key=lambda t: t.path_id
        )
        redelivery = RadioMapBuilder(base_map.n_aps)
        redelivery.add_table(tables[0])
        shard.apply_delta(redelivery.drain_delta())
        assert shard.epoch == 1
        np.testing.assert_allclose(
            shard.locate(queries), before, rtol=0.0, atol=1e-12
        )
