"""Floor classification and routing: bare-venue queries onto per-floor
shards, artifact round trips, and the legacy single-floor path."""

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.core import TopoACDifferentiator
from repro.exceptions import ServingError
from repro.positioning import WKNNEstimator
from repro.serving import (
    FLOORS_KIND,
    FloorClassifier,
    FloorRouter,
    PositioningService,
    VenueShard,
    deploy_floors,
    load_floor_deployment,
    save_floor_deployment,
)
from repro.serving.fleet import ShardRegistry, partition_venue


def floor_scans(dataset, floor_id, n, seed):
    """Fresh scans measured on one floor's reference points."""
    rng = np.random.default_rng(seed)
    rps = dataset.venue.floor(floor_id).reference_points
    return np.stack(
        [
            dataset.channels[floor_id]
            .measure(rps[i % len(rps)], rng)
            .rssi
            for i in range(n)
        ]
    )


@pytest.fixture(scope="module")
def deployed(multifloor_smoke):
    service = PositioningService(cache_size=0)
    keys = deploy_floors(
        service,
        multifloor_smoke.venue,
        multifloor_smoke.radio_maps,
        lambda floor: TopoACDifferentiator(
            entities=floor.plan.entities
        ),
        estimator_factory=WKNNEstimator,
    )
    return service, keys


class TestFloorClassifier:
    def test_strongest_ap_separates_floors(self, multifloor_smoke):
        clf = FloorClassifier.from_venue(multifloor_smoke.venue)
        for idx, fid in enumerate(multifloor_smoke.venue.floor_ids):
            scans = floor_scans(multifloor_smoke, fid, 12, seed=idx)
            got = clf.classify(scans)
            assert (got == idx).mean() >= 0.9

    def test_nearest_map_separates_floors(self, multifloor_smoke):
        clf = FloorClassifier.from_radio_maps(
            multifloor_smoke.radio_maps,
            multifloor_smoke.venue.ap_floor_index(),
        )
        assert clf.mode == "nearest-map"
        for idx, fid in enumerate(multifloor_smoke.venue.floor_ids):
            scans = floor_scans(multifloor_smoke, fid, 12, seed=idx)
            got = clf.classify(scans)
            assert (got == idx).mean() >= 0.9

    def test_blank_scan_falls_back_to_ground_floor(
        self, multifloor_smoke
    ):
        clf = FloorClassifier.from_venue(multifloor_smoke.venue)
        blank = np.full((2, clf.n_aps), np.nan)
        np.testing.assert_array_equal(clf.classify(blank), [0, 0])

    def test_classify_one(self, multifloor_smoke):
        clf = FloorClassifier.from_venue(multifloor_smoke.venue)
        scan = floor_scans(multifloor_smoke, "f2", 1, seed=3)[0]
        assert clf.classify_one(scan) == 1

    def test_wrong_width_rejected(self, multifloor_smoke):
        clf = FloorClassifier.from_venue(multifloor_smoke.venue)
        with pytest.raises(ServingError, match="fingerprints"):
            clf.classify(np.zeros((2, clf.n_aps + 1)))

    def test_bad_mode_rejected(self):
        with pytest.raises(ServingError, match="mode"):
            FloorClassifier(
                floors=("f1",), ap_floor=np.zeros(3), mode="psychic"
            )

    def test_nearest_map_needs_maps(self):
        with pytest.raises(ServingError, match="one map per floor"):
            FloorClassifier(
                floors=("f1", "f2"),
                ap_floor=np.zeros(3),
                mode="nearest-map",
            )

    def test_artifact_round_trip(self, multifloor_smoke, tmp_path):
        from repro.artifacts import load_artifact, save_artifact

        clf = FloorClassifier.from_radio_maps(
            multifloor_smoke.radio_maps,
            multifloor_smoke.venue.ap_floor_index(),
        )
        artifact = clf.to_artifact("kaide")
        assert artifact.kind == FLOORS_KIND
        path = tmp_path / "floors.npz"
        save_artifact(artifact, path)
        back = FloorClassifier.from_artifact(load_artifact(path))
        assert back.floors == clf.floors
        assert back.mode == clf.mode
        np.testing.assert_array_equal(back.ap_floor, clf.ap_floor)
        scans = floor_scans(multifloor_smoke, "f1", 6, seed=9)
        np.testing.assert_array_equal(
            back.classify(scans), clf.classify(scans)
        )


class TestFloorRouting:
    def test_deploy_keys(self, deployed):
        _, keys = deployed
        assert keys == ["kaide/f1", "kaide/f2"]

    def test_bare_venue_routes(self, deployed, multifloor_smoke):
        service, _ = deployed
        router = service.floor_router("kaide")
        assert isinstance(router, FloorRouter)
        before = service.stats.floor_routed
        scans = floor_scans(multifloor_smoke, "f2", 6, seed=21)
        positions = service.query_batch(["kaide"] * len(scans), scans)
        assert positions.shape == (len(scans), 2)
        assert np.isfinite(positions).all()
        assert service.stats.floor_routed == before + len(scans)

    def test_bare_query_matches_explicit_floor_query(
        self, deployed, multifloor_smoke
    ):
        """Routing is a key rewrite, nothing more: the routed answer
        is bit-identical to addressing the floor shard directly."""
        service, _ = deployed
        scans = floor_scans(multifloor_smoke, "f1", 5, seed=22)
        routed = service.query_batch(["kaide"] * len(scans), scans)
        keys = service.floor_router("kaide").route(scans)
        direct = service.query_batch(keys, scans)
        np.testing.assert_array_equal(routed, direct)

    def test_explicit_floor_key_skips_router(
        self, deployed, multifloor_smoke
    ):
        service, _ = deployed
        before = service.stats.floor_routed
        scans = floor_scans(multifloor_smoke, "f1", 4, seed=23)
        service.query_batch(["kaide/f1"] * len(scans), scans)
        assert service.stats.floor_routed == before

    def test_unrouted_venue_still_rejected(
        self, deployed, multifloor_smoke
    ):
        service, _ = deployed
        scans = floor_scans(multifloor_smoke, "f1", 1, seed=24)
        with pytest.raises(ServingError, match="unknown venue"):
            service.query_batch(["atlantis"], scans)

    def test_detach_restores_rejection(self, multifloor_smoke):
        service = PositioningService(cache_size=0)
        deploy_floors(
            service,
            multifloor_smoke.venue,
            multifloor_smoke.radio_maps,
            lambda floor: TopoACDifferentiator(
                entities=floor.plan.entities
            ),
            estimator_factory=WKNNEstimator,
        )
        scans = floor_scans(multifloor_smoke, "f1", 2, seed=25)
        service.query_batch(["kaide"] * 2, scans)
        assert service.detach_floor_router("kaide") is not None
        with pytest.raises(ServingError, match="unknown venue"):
            service.query_batch(["kaide"] * 2, scans)

    def test_stats_render_mentions_routing(
        self, deployed, multifloor_smoke
    ):
        service, _ = deployed
        scans = floor_scans(multifloor_smoke, "f1", 1, seed=26)
        service.query_batch(["kaide"], scans)
        assert "floor routed=" in service.stats.render()


class TestFloorDeploymentRoundTrip:
    def test_save_load_bit_identical(
        self, deployed, multifloor_smoke, tmp_path
    ):
        service, keys = deployed
        store = ArtifactStore(tmp_path / "store")
        written = save_floor_deployment(store, "kaide", service)
        assert set(written) == set(keys) | {"kaide/floors"}

        fresh = PositioningService(cache_size=0)
        loaded_keys = load_floor_deployment(store, "kaide", fresh)
        assert loaded_keys == keys
        scans = np.concatenate(
            [
                floor_scans(multifloor_smoke, fid, 5, seed=31 + i)
                for i, fid in enumerate(("f1", "f2"))
            ]
        )
        venues = ["kaide"] * len(scans)
        np.testing.assert_array_equal(
            fresh.query_batch(venues, scans),
            service.query_batch(venues, scans),
        )

    def test_save_without_router_rejected(self, tmp_path):
        service = PositioningService(cache_size=0)
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ServingError, match="no floor router"):
            save_floor_deployment(store, "kaide", service)

    def test_floor_shard_loads_as_legacy_single_floor(
        self, deployed, multifloor_smoke, tmp_path
    ):
        """A floor shard artifact is a plain ``serving.shard``: the
        pre-floor loader deploys it under any bare key, no retraining,
        same answers."""
        service, _ = deployed
        store = ArtifactStore(tmp_path / "store")
        save_floor_deployment(store, "kaide", service)

        legacy = PositioningService(cache_size=0)
        shard = VenueShard.load(
            store.path_for("kaide/f1"), key="kaide"
        )
        legacy.register(shard)
        scans = floor_scans(multifloor_smoke, "f1", 6, seed=41)
        np.testing.assert_array_equal(
            legacy.query_batch(["kaide"] * len(scans), scans),
            service.query_batch(["kaide/f1"] * len(scans), scans),
        )


class TestFleetKeyAwareness:
    def test_floors_co_locate_on_one_worker(self):
        for n_workers in (2, 3, 7):
            home = partition_venue("kaide", n_workers)
            assert partition_venue("kaide/f1", n_workers) == home
            assert partition_venue("kaide/f2", n_workers) == home

    def test_registry_canonicalizes_added_keys(self, tmp_path):
        from repro.serving import ShardKey

        registry = ShardRegistry(tmp_path, {})
        registry.add(ShardKey("kaide", "f1"), "kaide/f1")
        registry.add("kaide/f2", "kaide/f2")
        assert registry.venues == ("kaide/f1", "kaide/f2")
