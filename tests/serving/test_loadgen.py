"""Load generator: scenarios, schedules, reports, concurrent smoke."""

import numpy as np
import pytest

from repro.core import MAROnlyDifferentiator
from repro.exceptions import ServingError
from repro.experiments import PRESETS
from repro.positioning import WKNNEstimator
from repro.serving import (
    DEFAULT_MIX,
    DEFAULT_SCENARIO,
    PositioningService,
    Scenario,
    ServingPipeline,
    run_scenario,
    scan_pool,
    zipf_weights,
)
from repro.serving.loadgen import _make_schedule, run


class TestZipfWeights:
    def test_uniform_at_zero_exponent(self):
        np.testing.assert_allclose(zipf_weights(4, 0.0), [0.25] * 4)

    def test_normalised_and_decreasing(self):
        w = zipf_weights(5, 1.2)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) < 0).all()

    def test_empty_rejected(self):
        with pytest.raises(ServingError):
            zipf_weights(0, 1.0)


class TestScenario:
    def test_defaults_valid(self):
        for scenario in DEFAULT_MIX:
            assert 0.0 <= scenario.duplicate_rate <= 1.0

    def test_default_scenario_has_rescans(self):
        assert DEFAULT_SCENARIO.duplicate_rate == 0.5

    def test_bad_duplicate_rate_rejected(self):
        with pytest.raises(ServingError):
            Scenario("bad", duplicate_rate=1.5)

    def test_bad_arrival_rejected(self):
        with pytest.raises(ServingError):
            Scenario("bad", arrival="poisson")

    def test_bad_burst_rejected(self):
        with pytest.raises(ServingError):
            Scenario("bad", burst_size=0)


class TestSchedule:
    def make_pools(self):
        rng = np.random.default_rng(0)
        return {
            "a": rng.normal(-70, 5, size=(32, 6)),
            "b": rng.normal(-70, 5, size=(32, 9)),
        }

    def test_total_requests_preserved(self):
        pools = self.make_pools()
        schedule = _make_schedule(
            pools,
            Scenario("s", burst_size=7),
            50,
            np.random.default_rng(1),
        )
        assert sum(len(scans) for _, scans in schedule) == 50

    def test_bursts_are_single_venue_with_right_width(self):
        pools = self.make_pools()
        schedule = _make_schedule(
            pools,
            Scenario("s", burst_size=8),
            64,
            np.random.default_rng(2),
        )
        for venue, scans in schedule:
            assert scans.shape[1] == pools[venue].shape[1]

    def test_duplicate_rate_repeats_rows_exactly(self):
        pools = self.make_pools()
        schedule = _make_schedule(
            pools,
            Scenario("s", burst_size=64, duplicate_rate=1.0),
            64,
            np.random.default_rng(3),
        )
        _, scans = schedule[0]
        # dup rate 1: every row after the first repeats its predecessor.
        np.testing.assert_array_equal(scans[1:], scans[:-1])

    def test_steady_arrival_uses_single_scan_bursts(self):
        pools = self.make_pools()
        schedule = _make_schedule(
            pools,
            Scenario("s", arrival="steady", burst_size=32),
            10,
            np.random.default_rng(4),
        )
        assert all(len(scans) == 1 for _, scans in schedule)

    def test_zipf_skew_prefers_first_venue(self):
        pools = self.make_pools()
        counts = {"a": 0, "b": 0}
        for _ in range(30):
            schedule = _make_schedule(
                pools,
                Scenario("s", zipf_exponent=3.0, burst_size=16),
                16,
                np.random.default_rng(_),
            )
            for venue, scans in schedule:
                counts[venue] += len(scans)
        assert counts["a"] > counts["b"]


@pytest.fixture
def two_venue_service(kaide_smoke, longhu_smoke):
    svc = PositioningService(cache_size=1024)
    pools = {}
    rng = np.random.default_rng(0)
    for name, ds in (("kaide", kaide_smoke), ("longhu", longhu_smoke)):
        svc.deploy(
            name,
            ds.radio_map,
            MAROnlyDifferentiator(),
            estimator=WKNNEstimator(),
        )
        pools[name] = scan_pool(ds, 64, rng)
    return svc, pools


class TestRunScenario:
    def test_report_sane(self, two_venue_service):
        svc, pools = two_venue_service
        with ServingPipeline(svc, max_delay_ms=0.5) as pipeline:
            report = run_scenario(
                pipeline,
                pools,
                Scenario("quick", burst_size=8, zipf_exponent=1.0),
                threads=3,
                requests_per_thread=24,
                seed=1,
            )
        assert report.requests == 3 * 24
        assert report.errors == 0
        assert report.throughput > 0
        assert 0 <= report.p50_ms <= report.p95_ms <= report.p99_ms
        assert sum(report.per_venue.values()) == report.requests
        assert "quick" in report.render()

    def test_duplicates_answered_from_cache(self, two_venue_service):
        """Duplicate-rate 0.5: repeated rows come back as cache hits."""
        svc, pools = two_venue_service
        with ServingPipeline(svc, max_delay_ms=0.5) as pipeline:
            report = run_scenario(
                pipeline,
                pools,
                Scenario("rescan", duplicate_rate=0.5, burst_size=16),
                threads=2,
                requests_per_thread=64,
                seed=2,
            )
        assert report.errors == 0
        assert report.hit_rate > 0

    def test_steady_arrival_runs(self, two_venue_service):
        svc, pools = two_venue_service
        with ServingPipeline(svc, max_delay_ms=0.5) as pipeline:
            report = run_scenario(
                pipeline,
                pools,
                Scenario("steady", arrival="steady"),
                threads=2,
                requests_per_thread=8,
                seed=3,
            )
        assert report.requests == 16
        assert report.errors == 0


@pytest.mark.slow
class TestLoadSmoke:
    """The CI smoke profile: a small multi-threaded scenario mix
    against two deployed venues through the full `run()` entry point —
    exercises the concurrent path end to end on every PR."""

    def test_smoke_profile(self):
        result = run(
            PRESETS["smoke"],
            threads=4,
            requests_per_thread=64,
            warmup_per_thread=16,
            pool_size=64,
        )
        data = result.data
        scenarios = data["scenarios"]
        assert set(scenarios) == {s.name for s in DEFAULT_MIX}
        for name, stats in scenarios.items():
            assert stats["errors"] == 0, name
            assert stats["throughput"] > 0, name
            assert (
                stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
            ), name
        # Device re-scans must be answered from the cache.
        assert scenarios["default"]["hit_rate"] > 0
        assert scenarios["rescan-heavy"]["hit_rate"] > 0
        assert data["baseline_throughput"] > 0
        assert "p50" in result.rendered

    def test_duplicate_rate_override(self):
        result = run(
            PRESETS["smoke"],
            threads=2,
            requests_per_thread=32,
            warmup_per_thread=8,
            pool_size=32,
            duplicate_rate=0.5,
            scenarios=[Scenario("only", burst_size=16)],
        )
        stats = result.data["scenarios"]["only"]
        assert stats["errors"] == 0
        assert stats["hit_rate"] > 0


class TestSeedThreading:
    """--seed → scenario → arrival: reproducible request streams."""

    def make_pools(self):
        rng = np.random.default_rng(0)
        return {
            "a": rng.normal(-70, 5, size=(32, 6)),
            "b": rng.normal(-70, 5, size=(32, 9)),
        }

    def test_same_seed_same_schedule(self):
        pools = self.make_pools()
        scenario = Scenario(
            "s", burst_size=8, zipf_exponent=1.1, duplicate_rate=0.3
        )
        a = _make_schedule(pools, scenario, 64, np.random.default_rng(9))
        b = _make_schedule(pools, scenario, 64, np.random.default_rng(9))
        assert [v for v, _ in a] == [v for v, _ in b]
        for (_, sa), (_, sb) in zip(a, b):
            np.testing.assert_array_equal(sa, sb)

    def test_different_seed_different_schedule(self):
        pools = self.make_pools()
        scenario = Scenario(
            "s", burst_size=8, zipf_exponent=1.1, duplicate_rate=0.3
        )
        a = _make_schedule(pools, scenario, 64, np.random.default_rng(1))
        b = _make_schedule(pools, scenario, 64, np.random.default_rng(2))
        assert any(
            va != vb or not np.array_equal(sa, sb)
            for (va, sa), (vb, sb) in zip(a, b)
        )

    def test_run_threads_seed_to_everything(self):
        """run(seed=...) replays the exact same request mix."""
        kwargs = dict(
            threads=2,
            requests_per_thread=16,
            warmup_per_thread=0,
            pool_size=16,
            scenarios=[Scenario("only", burst_size=8)],
        )
        a = run(PRESETS["smoke"], seed=1234, **kwargs)
        b = run(PRESETS["smoke"], seed=1234, **kwargs)
        assert a.data["seed"] == b.data["seed"] == 1234
        sa = a.data["scenarios"]["only"]
        sb = b.data["scenarios"]["only"]
        assert sa["requests"] == sb["requests"]
        c = run(PRESETS["smoke"], seed=99, **kwargs)
        assert c.data["seed"] == 99


class TestDriftScenario:
    def test_drift_fields_validated(self):
        from repro.serving import DRIFT_SCENARIO

        assert DRIFT_SCENARIO.drift_applies > 0
        with pytest.raises(ServingError):
            Scenario("bad", drift_applies=-1)

    def test_run_scenario_invokes_drift_fn(self, two_venue_service):
        svc, pools = two_venue_service
        calls = []
        with ServingPipeline(svc, max_delay_ms=0.5) as pipeline:
            report = run_scenario(
                pipeline,
                pools,
                Scenario("drifty", burst_size=8, drift_applies=3),
                threads=2,
                requests_per_thread=24,
                seed=5,
                drift_fn=lambda: calls.append(1),
                drift_interval=0.0,
            )
        assert len(calls) == 3
        assert report.applies == 3
        assert report.errors == 0
        assert "applies=3" in report.render()

    def test_failing_drift_fn_counts_as_error(self, two_venue_service):
        """A raising apply surfaces in errors; later applies still run."""
        svc, pools = two_venue_service
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("apply blew up")

        with ServingPipeline(svc, max_delay_ms=0.5) as pipeline:
            report = run_scenario(
                pipeline,
                pools,
                Scenario("drifty", burst_size=8, drift_applies=3),
                threads=1,
                requests_per_thread=16,
                seed=8,
                drift_fn=flaky,
                drift_interval=0.0,
            )
        assert len(calls) == 3
        assert report.applies == 2
        assert report.errors == 1

    def test_no_drift_fn_no_applies(self, two_venue_service):
        svc, pools = two_venue_service
        with ServingPipeline(svc, max_delay_ms=0.5) as pipeline:
            report = run_scenario(
                pipeline,
                pools,
                Scenario("plain", burst_size=8),
                threads=1,
                requests_per_thread=8,
                seed=6,
            )
        assert report.applies == 0
        assert "applies" not in report.render()

    def test_run_with_drift_applies_deltas_live(self):
        """End to end: deltas hot-apply while the mix runs."""
        result = run(
            PRESETS["smoke"],
            threads=2,
            requests_per_thread=32,
            warmup_per_thread=4,
            pool_size=32,
            scenarios=[],
            include_drift=True,
            seed=7,
        )
        drift = result.data["scenarios"]["drift"]
        assert drift["errors"] == 0
        assert drift["applies"] > 0
        assert drift["apply_mean_ms"] > 0
        assert result.data["deltas_applied"] == drift["applies"]
