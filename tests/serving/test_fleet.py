"""Shard fleet: lazy mmap loading, memory-budgeted LRU eviction,
hash-partitioned multi-process routing, and crash recovery."""

import os
import signal
import time

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.exceptions import ServingError
from repro.obs import BUCKET_FACTOR, Telemetry
from repro.serving import (
    PositioningService,
    ShardFleet,
    ShardRegistry,
    partition_venue,
)
from repro.serving.loadgen import fleet_schedule, synthetic_venue_pool


N_VENUES = 12


@pytest.fixture(scope="module")
def city(tmp_path_factory):
    """A small saved city pool: (store, mapping, scan pools)."""
    rng = np.random.default_rng(11)
    shards, pools = synthetic_venue_pool(
        N_VENUES, rng, n_records=48, n_aps=12, scans_per_venue=8
    )
    root = tmp_path_factory.mktemp("fleet-store")
    store = ArtifactStore(root)
    mapping = {}
    for venue, shard in shards.items():
        shard.save(store.path_for(venue))
        mapping[venue] = venue
    return store, mapping, pools, shards


def baseline_answers(shards, schedule):
    return np.stack(
        [shards[venue].locate(row[None])[0] for venue, row in schedule]
    )


# ----------------------------------------------------------------------
# ShardRegistry: lazy loading and eviction
# ----------------------------------------------------------------------
def test_registry_loads_lazily_on_first_query(city):
    store, mapping, pools, _ = city
    registry = ShardRegistry(store, mapping)
    assert registry.stats.lazy_loads == 0
    assert registry.resident == ()

    venue = sorted(mapping)[0]
    shard = registry.get(venue)
    out = shard.locate(pools[venue][:1])
    assert out.shape == (1, 2)
    assert registry.stats.lazy_loads == 1
    assert registry.resident == (venue,)
    # Only the touched venue is resident; byte accounting is live.
    assert registry.stats.resident_venues == 1
    assert registry.stats.total_bytes > 0

    # Second touch is a pure hit: no loads, LRU position refreshed.
    assert registry.get(venue) is shard
    assert registry.stats.lazy_loads == 1
    assert registry.stats.hits == 1


def test_registry_unknown_venue_raises(city):
    store, mapping, _, _ = city
    registry = ShardRegistry(store, mapping)
    with pytest.raises(ServingError, match="unknown venue"):
        registry.get("venue-none")


def test_registry_evicts_in_lru_order(city):
    store, mapping, _, _ = city
    venues = sorted(mapping)[:4]
    registry = ShardRegistry(store, mapping)
    for venue in venues:
        registry.get(venue)
    footprints = {
        v: registry._entries[v].resident + registry._entries[v].mapped
        for v in venues
    }
    # Touch venue 0 so venue 1 becomes the LRU candidate.
    registry.get(venues[0])
    assert registry.resident == (
        venues[1],
        venues[2],
        venues[3],
        venues[0],
    )

    # Shrink the budget to exactly two shards: the two least recently
    # used (1 then 2) must go, in that order, immediately.
    keep = footprints[venues[3]] + footprints[venues[0]]
    registry.memory_budget_bytes = keep
    assert registry.resident == (venues[3], venues[0])
    assert registry.stats.evictions == 2
    assert registry.stats.resident_venues == 2
    assert registry.stats.total_bytes <= keep

    # A reload after eviction is served by the mmap fast path and is
    # bit-identical to the originally loaded shard.
    again = registry.get(venues[1])
    assert registry.stats.fast_reloads >= 1
    first = ShardRegistry(store, mapping).get(venues[1])
    probe = np.linspace(-90.0, -30.0, first.n_aps)[None]
    np.testing.assert_array_equal(
        again.locate(probe), first.locate(probe)
    )


def test_registry_never_evicts_the_venue_just_loaded(city):
    store, mapping, _, _ = city
    # A budget below a single shard still serves: the MRU survives.
    registry = ShardRegistry(store, mapping, memory_budget_mb=1e-6)
    a, b = sorted(mapping)[:2]
    registry.get(a)
    assert registry.resident == (a,)
    registry.get(b)
    assert registry.resident == (b,)
    assert registry.stats.evictions == 1


def test_registry_syncs_attached_service(city):
    store, mapping, pools, _ = city
    service = PositioningService(cache_size=0)
    registry = ShardRegistry(
        store, mapping, memory_budget_mb=1e-6, service=service
    )
    a, b = sorted(mapping)[:2]
    registry.get(a)
    assert service.venues == (a,)
    registry.get(b)  # evicts a, registers b
    assert service.venues == (b,)
    out = service.query(b, pools[b][0])
    assert out.shape == (2,)


# ----------------------------------------------------------------------
# Fleet: routing, parity, crash recovery
# ----------------------------------------------------------------------
def test_partitioning_is_stable_and_total():
    venues = [f"venue-{i:04d}" for i in range(100)]
    owners = {v: partition_venue(v, 4) for v in venues}
    # Deterministic across calls (and processes — crc32, not hash()).
    assert owners == {v: partition_venue(v, 4) for v in venues}
    assert set(owners.values()) <= set(range(4))
    assert len(set(owners.values())) == 4  # all workers get venues


def test_fleet_routes_each_venue_to_exactly_one_worker(city):
    store, mapping, pools, _ = city
    with ShardFleet(store, mapping, workers=3) as fleet:
        owned = [0, 0, 0]
        for venue in sorted(mapping):
            owned[fleet.partition(venue)] += 1
            fleet.locate(venue, pools[venue][0])
            fleet.locate(venue, pools[venue][1])  # revisit: no reload
        stats = fleet.stats()
    # Each worker lazily loaded exactly the venues it owns — once —
    # so every venue was served by exactly one worker, and revisits
    # hit that worker's resident shard.
    for w, expected in zip(stats.workers, owned):
        assert w.registry.lazy_loads == expected
        assert w.venues_served == expected
    assert sum(owned) == len(mapping)
    assert stats.requests == 2 * len(mapping)
    assert stats.errors == 0


def test_fleet_matches_single_process_bit_for_bit(city):
    store, mapping, pools, shards = city
    schedule = fleet_schedule(
        pools, 200, np.random.default_rng(5), zipf_exponent=1.1
    )
    expected = baseline_answers(shards, schedule)
    with ShardFleet(
        store, mapping, workers=2, bundle_size=32
    ) as fleet:
        tickets = fleet.submit_many(schedule)
        fleet.flush()
        got = np.stack([t.result(timeout=60.0) for t in tickets])
    np.testing.assert_array_equal(got, expected)


def test_fleet_unknown_venue_fails_in_caller(city):
    store, mapping, pools, _ = city
    with ShardFleet(store, mapping, workers=2) as fleet:
        with pytest.raises(ServingError, match="unknown venue"):
            fleet.submit("venue-none", np.zeros(12))


def test_fleet_respawns_crashed_worker_bit_identical(city):
    store, mapping, pools, shards = city
    venue = sorted(mapping)[0]
    row = pools[venue][0]
    expected = shards[venue].locate(row[None])[0]
    with ShardFleet(store, mapping, workers=2) as fleet:
        first = fleet.locate(venue, row)
        victim = fleet.partition(venue)
        pid = fleet._workers[victim].proc.pid
        os.kill(pid, signal.SIGKILL)
        # The dead worker is detected, respawned, and the venue
        # re-loaded from the store on the next query for it.
        deadline = time.monotonic() + 30.0
        while fleet._workers[victim].proc.pid == pid:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        second = fleet.locate(venue, row, timeout=60.0)
        stats = fleet.stats()
    np.testing.assert_array_equal(first, expected)
    np.testing.assert_array_equal(second, expected)
    assert stats.respawns == 1


def test_fleet_resubmits_inflight_requests_after_crash(city):
    store, mapping, pools, shards = city
    schedule = fleet_schedule(
        pools, 64, np.random.default_rng(9), zipf_exponent=1.1
    )
    expected = baseline_answers(shards, schedule)
    # Huge bundle: everything sits buffered/in-flight when the worker
    # owning venue 0 dies; the fleet must resubmit, not drop.
    with ShardFleet(
        store, mapping, workers=2, bundle_size=10_000
    ) as fleet:
        victim = fleet.partition(sorted(mapping)[0])
        tickets = fleet.submit_many(schedule)
        os.kill(fleet._workers[victim].proc.pid, signal.SIGKILL)
        fleet.flush()
        got = np.stack([t.result(timeout=60.0) for t in tickets])
    np.testing.assert_array_equal(got, expected)


def test_fleet_close_fails_leftover_tickets(city):
    store, mapping, pools, _ = city
    fleet = ShardFleet(store, mapping, workers=2, bundle_size=10_000)
    fleet.start()
    venue = sorted(mapping)[0]
    ticket = fleet.submit(venue, pools[venue][0])
    fleet.flush()
    fleet.wait_outstanding(0, timeout=60.0)
    assert ticket.error is None
    fleet.close()
    # After close, new work is refused.
    with pytest.raises(ServingError):
        fleet.submit(venue, pools[venue][0])


# ----------------------------------------------------------------------
# Telemetry: worker deltas merge into one fleet view
# ----------------------------------------------------------------------
def test_fleet_merges_worker_telemetry(city):
    store, mapping, pools, _ = city
    telemetry = Telemetry(sample_every=1, slow_ms=0.0)
    schedule = fleet_schedule(
        pools, 200, np.random.default_rng(21), zipf_exponent=1.1
    )
    with ShardFleet(
        store, mapping, workers=2, bundle_size=32, telemetry=telemetry
    ) as fleet:
        fleet.submit_many(schedule)
        fleet.flush()
        fleet.wait_outstanding(0, timeout=60.0)
        stats = fleet.stats()
    # close() joined the collectors, so every shipped delta is merged.
    m = telemetry.metrics
    # Parent-side counters + the end-to-end latency histogram.
    assert m.counter("fleet.requests").value == len(schedule)
    assert m.counter("fleet.resolved").value == len(schedule)
    assert m.counter("fleet.errors").value == 0
    assert m.histogram("fleet.request_seconds").count == len(schedule)
    # Worker deltas shipped over the pipes sum to the fleet totals.
    assert m.counter("worker.requests").value == len(schedule)
    assert (
        m.counter("registry.lazy_loads").value == stats.lazy_loads
    )
    # Gauges arrive relabelled per worker so sources never clobber.
    workers_seen = {
        labels.get("worker")
        for labels, _ in m.labelled("registry.resident_bytes")
        if labels
    }
    assert workers_seen == {"0", "1"}
    # Sampled worker serve spans were ingested into the fleet view.
    spans = telemetry.spans()
    assert any(s["name"] == "worker.serve" for s in spans)
    # The FleetStats view stayed faithful to the same registry.
    assert stats.requests == len(schedule)
    assert stats.errors == 0


def test_fleet_internal_telemetry_still_aggregates(city):
    """Without an explicit telemetry bundle the fleet builds its own:
    metric aggregation works (stats views), tracing stays disarmed."""
    store, mapping, pools, _ = city
    venue = sorted(mapping)[0]
    with ShardFleet(store, mapping, workers=2) as fleet:
        fleet.locate(venue, pools[venue][0])
        stats = fleet.stats()
        m = fleet.telemetry.metrics
        assert m.counter("fleet.requests").value == 1
        assert fleet._worker_sample_every == 0
    assert stats.requests == 1
    assert fleet.telemetry.spans() == []


# ----------------------------------------------------------------------
# Slow smoke: small city, 2 workers, throughput sanity
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_fleet_smoke_two_workers_beats_baseline():
    from repro.serving import fleetbench

    result = fleetbench.run(
        n_venues=32,
        workers=2,
        requests=4096,
        seed=2,
    )
    data = result.data
    assert data["errors"] == 0
    assert data["parity_exact"] is True
    assert data["fleet"]["lazy_loads"] > 0
    assert (
        data["fleet"]["throughput"] >= data["baseline"]["throughput"]
    )
    # Acceptance: live percentiles off the fleet's own histogram
    # track the ticket-derived (loadgen-style) percentiles of the
    # same timed pass to within one bucket width.
    live = data["fleet"]["live_histogram"]
    for key in ("p50_ms", "p95_ms", "p99_ms"):
        exact = data["fleet"][key]
        assert (
            exact / BUCKET_FACTOR
            <= live[key]
            <= exact * BUCKET_FACTOR ** 2
        ), (key, exact, live[key])
