"""PositioningService: sharding, routing, caching, stats,
duplicate coalescing, and thread safety under query/reload races."""

import threading

import numpy as np
import pytest

from repro.bisim import BiSIMConfig
from repro.core import MAROnlyDifferentiator, TopoACDifferentiator
from repro.exceptions import ServingError
from repro.positioning import KNNEstimator, WKNNEstimator
from repro.serving import PositioningService


@pytest.fixture(scope="module")
def service(kaide_smoke, longhu_smoke):
    """Two venues deployed on the instant (mean-fill) path."""
    svc = PositioningService(cache_size=64)
    for name, ds in (("kaide", kaide_smoke), ("longhu", longhu_smoke)):
        svc.deploy(
            name,
            ds.radio_map,
            TopoACDifferentiator(entities=ds.venue.plan.entities),
            estimator=WKNNEstimator(),
        )
    return svc


def scans(dataset, n, seed):
    rng = np.random.default_rng(seed)
    rps = dataset.venue.reference_points
    return np.stack(
        [
            dataset.channel.measure(rps[i % len(rps)], rng).rssi
            for i in range(n)
        ]
    )


class TestRouting:
    def test_venues_registered(self, service):
        assert service.venues == ("kaide", "longhu")

    def test_unknown_venue_rejected(self, service, kaide_smoke):
        with pytest.raises(ServingError, match="unknown venue"):
            service.query("mall99", scans(kaide_smoke, 1, 0)[0])

    def test_mixed_venue_batch_matches_per_venue(
        self, service, kaide_smoke, longhu_smoke
    ):
        """Interleaved venues route to the right shard, rows aligned."""
        ka = scans(kaide_smoke, 3, 1)
        lo = scans(longhu_smoke, 3, 2)
        venues = ["kaide", "longhu", "kaide", "longhu", "kaide", "longhu"]
        fps = [ka[0], lo[0], ka[1], lo[1], ka[2], lo[2]]
        mixed = service.query_batch(venues, fps)
        direct_ka = service.shard("kaide").locate(ka)
        direct_lo = service.shard("longhu").locate(lo)
        np.testing.assert_allclose(mixed[0::2], direct_ka)
        np.testing.assert_allclose(mixed[1::2], direct_lo)

    def test_single_query_shape(self, service, kaide_smoke):
        out = service.query("kaide", scans(kaide_smoke, 1, 3)[0])
        assert out.shape == (2,)

    def test_length_mismatch_rejected(self, service, kaide_smoke):
        with pytest.raises(ServingError, match="length mismatch"):
            service.query_batch(["kaide"], scans(kaide_smoke, 2, 4))

    def test_duplicate_registration_rejected(self, service, kaide_smoke):
        shard = service.shard("kaide")
        with pytest.raises(ServingError, match="already registered"):
            service.register(shard)


class TestMixedArrayBatch:
    """Mixed-venue (n, D) ndarray batches: the group-by-venue path."""

    @pytest.fixture(scope="class")
    def twin_service(self, kaide_smoke):
        """Two same-width venues, caching off: the grouped path."""
        svc = PositioningService(cache_size=0)
        for name in ("north", "south"):
            svc.deploy(
                name,
                kaide_smoke.radio_map,
                TopoACDifferentiator(
                    entities=kaide_smoke.venue.plan.entities
                ),
                estimator=WKNNEstimator(),
            )
        return svc

    def test_array_matches_row_sequence(self, twin_service, kaide_smoke):
        batch = scans(kaide_smoke, 8, 60)
        venues = ["north", "south"] * 4
        via_array = twin_service.query_batch(venues, batch)
        via_rows = twin_service.query_batch(venues, list(batch))
        np.testing.assert_array_equal(via_array, via_rows)

    def test_rows_route_to_their_venue(self, twin_service, kaide_smoke):
        batch = scans(kaide_smoke, 6, 61)
        venues = ["south", "north", "north", "south", "north", "south"]
        out = twin_service.query_batch(venues, batch)
        for venue in ("north", "south"):
            rows = [i for i, v in enumerate(venues) if v == venue]
            direct = twin_service.shard(venue).locate(batch[rows])
            np.testing.assert_array_equal(out[rows], direct)

    def test_wrong_width_rejected(self, twin_service, kaide_smoke):
        batch = scans(kaide_smoke, 4, 62)[:, :-1]
        with pytest.raises(ServingError, match="expects"):
            twin_service.query_batch(
                ["north", "south", "north", "south"], batch
            )

    def test_stats_count_rows_per_venue(self, kaide_smoke):
        svc = PositioningService(cache_size=0)
        for name in ("north", "south"):
            svc.deploy(
                name,
                kaide_smoke.radio_map,
                TopoACDifferentiator(
                    entities=kaide_smoke.venue.plan.entities
                ),
                estimator=WKNNEstimator(),
            )
        batch = scans(kaide_smoke, 5, 63)
        svc.query_batch(
            ["north", "south", "north", "north", "south"], batch
        )
        stats = svc.stats
        assert stats.per_venue == {"north": 3, "south": 2}
        assert stats.queries == 5
        assert stats.batches == 1
        # Cache disabled: the grouped path never touched key
        # machinery, so no hit/miss counters moved.
        assert stats.cache_hits == 0
        assert stats.cache_misses == 0

    def test_mixed_array_with_cache_coalesces(self, kaide_smoke):
        svc = PositioningService(cache_size=64)
        for name in ("north", "south"):
            svc.deploy(
                name,
                kaide_smoke.radio_map,
                TopoACDifferentiator(
                    entities=kaide_smoke.venue.plan.entities
                ),
                estimator=WKNNEstimator(),
            )
        base = scans(kaide_smoke, 2, 64)
        batch = np.vstack([base, base])  # every row repeats once
        venues = ["north", "south", "north", "south"]
        out = svc.query_batch(venues, batch)
        np.testing.assert_array_equal(out[:2], out[2:])
        assert svc.stats.cache_hits == 2  # in-batch repeats fan out
        assert svc.stats.cache_misses == 2
    def test_repeat_query_hits_cache(self, kaide_smoke):
        svc = PositioningService(cache_size=16)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        fp = scans(kaide_smoke, 1, 5)[0]
        first = svc.query("kaide", fp)
        assert svc.stats.cache_hits == 0
        second = svc.query("kaide", fp)
        assert svc.stats.cache_hits == 1
        np.testing.assert_allclose(first, second)

    def test_lru_eviction_bound(self, kaide_smoke):
        svc = PositioningService(cache_size=4)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        batch = scans(kaide_smoke, 10, 6)
        svc.query_batch(["kaide"] * 10, batch)
        assert len(svc._cache) <= 4

    def test_cache_disabled(self, kaide_smoke):
        svc = PositioningService(cache_size=0)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        fp = scans(kaide_smoke, 1, 7)[0]
        svc.query("kaide", fp)
        svc.query("kaide", fp)
        assert svc.stats.cache_hits == 0
        assert len(svc._cache) == 0


class TestDuplicateCoalescing:
    """Identical (venue, cache key) rows inside one batch: compute
    once, fan the answer out, count the repeats as hits."""

    def make_service(self, kaide_smoke, cache_size=64):
        svc = PositioningService(cache_size=cache_size)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        return svc

    def test_repeats_counted_as_hits_not_misses(self, kaide_smoke):
        svc = self.make_service(kaide_smoke)
        fp = scans(kaide_smoke, 1, 20)[0]
        batch = np.stack([fp, fp, fp, fp])
        out = svc.query_batch(["kaide"] * 4, batch)
        assert svc.stats.cache_misses == 1
        assert svc.stats.cache_hits == 3
        np.testing.assert_allclose(out, np.tile(out[0], (4, 1)))

    def test_shard_sees_each_distinct_row_once(self, kaide_smoke):
        svc = self.make_service(kaide_smoke)
        shard = svc.shard("kaide")
        served_rows = []
        original = shard.locate

        def counting_locate(queries):
            served_rows.append(len(queries))
            return original(queries)

        shard.locate = counting_locate
        a, b = scans(kaide_smoke, 2, 21)
        svc.query_batch(
            ["kaide"] * 6, np.stack([a, b, a, b, a, a])
        )
        shard.locate = original
        assert served_rows == [2]  # two distinct rows, one shard call

    def test_fanned_out_rows_match_direct_compute(self, kaide_smoke):
        svc = self.make_service(kaide_smoke)
        a, b = scans(kaide_smoke, 2, 22)
        direct = svc.shard("kaide").locate(np.stack([a, b]))
        out = svc.query_batch(["kaide"] * 4, np.stack([a, b, b, a]))
        np.testing.assert_allclose(out[0], direct[0])
        np.testing.assert_allclose(out[3], direct[0])
        np.testing.assert_allclose(out[1], direct[1])
        np.testing.assert_allclose(out[2], direct[1])

    def test_no_dedup_when_cache_disabled(self, kaide_smoke):
        """cache_size=0 turns off the quantized-key layer entirely —
        duplicates recompute, and no hit/miss is counted."""
        svc = self.make_service(kaide_smoke, cache_size=0)
        fp = scans(kaide_smoke, 1, 23)[0]
        svc.query_batch(["kaide"] * 3, np.stack([fp, fp, fp]))
        assert svc.stats.cache_hits == 0
        assert svc.stats.cache_misses == 0


class TestShardValidation:
    def test_impute_rejects_wrong_width(self, service):
        """The public impute names the venue contract instead of
        surfacing a deep imputation/broadcast error."""
        shard = service.shard("kaide")
        with pytest.raises(ServingError, match="kaide"):
            shard.impute(np.zeros((2, shard.n_aps + 3)))

    def test_impute_rejects_wrong_ndim(self, service):
        shard = service.shard("kaide")
        with pytest.raises(ServingError, match="expects"):
            shard.impute(np.zeros(shard.n_aps))

    def test_locate_rejects_wrong_width(self, service):
        shard = service.shard("kaide")
        with pytest.raises(ServingError, match="expects"):
            shard.locate(np.zeros((2, shard.n_aps + 1)))


class TestCacheInterleaving:
    """Eviction order, per-venue invalidation, and torn-state races."""

    def test_lru_eviction_order_at_boundary(self, kaide_smoke):
        """At capacity, the least-recently-USED entry goes first: a
        re-touched old entry survives, the untouched one is evicted."""
        svc = PositioningService(cache_size=3)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        a, b, c, d = scans(kaide_smoke, 4, 24)
        for fp in (a, b, c):
            svc.query("kaide", fp)  # cache = [a, b, c]
        svc.query("kaide", a)  # touch a -> LRU order [b, c, a]
        assert svc.stats.cache_hits == 1
        svc.query("kaide", d)  # evicts b -> [c, a, d]
        hits_before = svc.stats.cache_hits
        svc.query("kaide", a)
        svc.query("kaide", c)
        svc.query("kaide", d)
        assert svc.stats.cache_hits == hits_before + 3
        misses_before = svc.stats.cache_misses
        svc.query("kaide", b)  # evicted: must miss
        assert svc.stats.cache_misses == misses_before + 1

    def test_reload_invalidates_only_reloaded_venue(
        self, kaide_smoke, longhu_smoke, tmp_path
    ):
        svc = PositioningService(cache_size=64)
        for name, ds in (
            ("kaide", kaide_smoke),
            ("longhu", longhu_smoke),
        ):
            svc.deploy(
                name,
                ds.radio_map,
                MAROnlyDifferentiator(),
                estimator=KNNEstimator(),
            )
        ka = scans(kaide_smoke, 2, 25)
        lo = scans(longhu_smoke, 2, 26)
        svc.query_batch(["kaide"] * 2, ka)
        svc.query_batch(["longhu"] * 2, lo)
        cached_venues = [k[0] for k in svc._cache]
        assert cached_venues.count("kaide") == 2
        assert cached_venues.count("longhu") == 2

        path = tmp_path / "kaide.npz"
        svc.shard("kaide").save(path)
        svc.reload("kaide", path)
        cached_venues = [k[0] for k in svc._cache]
        assert cached_venues.count("kaide") == 0  # invalidated
        assert cached_venues.count("longhu") == 2  # untouched
        hits = svc.stats.cache_hits
        svc.query_batch(["longhu"] * 2, lo)
        assert svc.stats.cache_hits == hits + 2

    def test_reload_bumps_epoch_and_keeps_results_fresh(
        self, kaide_smoke, tmp_path
    ):
        svc = PositioningService(cache_size=64)
        shard = svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        path = tmp_path / "kaide.npz"
        shard.save(path)
        epoch = shard.epoch
        svc.reload("kaide", path)
        assert shard.epoch == epoch + 1

    def test_stale_epoch_result_not_cached(self, kaide_smoke, tmp_path):
        """A batch computed against a pipeline that was reloaded
        mid-flight must not repopulate the invalidated cache."""
        svc = PositioningService(cache_size=64)
        shard = svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        path = tmp_path / "kaide.npz"
        shard.save(path)
        fp = scans(kaide_smoke, 1, 27)[0]

        original = shard.locate

        def racing_locate(queries):
            out = original(queries)
            svc.reload("kaide", path)  # reload lands mid-query
            return out

        shard.locate = racing_locate
        svc.query("kaide", fp)
        shard.locate = original
        assert len(svc._cache) == 0  # stale insert was dropped

    def test_concurrent_queries_consistent(self, kaide_smoke):
        """Many threads, shared service: every answer matches the
        single-threaded reference and every query is counted."""
        svc = PositioningService(cache_size=256)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        batch = scans(kaide_smoke, 16, 28)
        expected = svc.shard("kaide").locate(batch)
        n_threads, rounds = 4, 10
        failures = []

        def worker():
            for _ in range(rounds):
                out = svc.query_batch(["kaide"] * len(batch), batch)
                if not np.allclose(out, expected, atol=1e-8):
                    failures.append(out)

        threads = [
            threading.Thread(target=worker) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert (
            svc.stats.queries == n_threads * rounds * len(batch)
        )
        assert (
            svc.stats.cache_hits + svc.stats.cache_misses
            == svc.stats.queries
        )

    def test_query_reload_stress_no_torn_results(
        self, kaide_smoke, tmp_path
    ):
        """Readers hammer query_batch while a writer hot-swaps the
        shard between two different pipelines: every observed answer
        must exactly match one whole pipeline (A or B) — a mixture
        would be a torn read — and no stale cache entry survives."""
        svc = PositioningService(cache_size=128)
        shard = svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(k=1),
        )
        path_a = tmp_path / "a.npz"
        shard.save(path_a)
        # Pipeline B: same venue, different estimator -> different
        # answers for the same probes.
        shard_b = PositioningService(cache_size=0).deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=WKNNEstimator(k=5),
        )
        path_b = tmp_path / "b.npz"
        shard_b.save(path_b)

        probes = scans(kaide_smoke, 8, 29)
        out_a = shard.locate(probes)
        out_b = shard_b.locate(probes)
        assert not np.allclose(out_a, out_b)  # distinguishable

        stop = threading.Event()
        bad = []

        def reader():
            keys = ["kaide"] * len(probes)
            while not stop.is_set():
                got = svc.query_batch(keys, probes)
                for row in range(len(probes)):
                    ok_a = np.allclose(got[row], out_a[row], atol=1e-8)
                    ok_b = np.allclose(got[row], out_b[row], atol=1e-8)
                    if not (ok_a or ok_b):
                        bad.append(got[row])

        def writer():
            for i in range(20):
                svc.reload(
                    "kaide", path_b if i % 2 == 0 else path_a
                )

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for t in readers:
            t.start()
        w = threading.Thread(target=writer)
        w.start()
        w.join()
        stop.set()
        for t in readers:
            t.join()
        assert not bad, f"torn/stale results observed: {bad[:3]}"
        # Final state is pipeline A (last reload): a fresh query must
        # serve A's answers, not anything cached from B.
        final = svc.query_batch(["kaide"] * len(probes), probes)
        np.testing.assert_allclose(final, out_a, atol=1e-8)


class TestStats:
    def test_counters_accumulate(self, kaide_smoke):
        svc = PositioningService()
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        batch = scans(kaide_smoke, 5, 8)
        svc.query_batch(["kaide"] * 5, batch)
        assert svc.stats.queries == 5
        assert svc.stats.batches == 1
        assert svc.stats.per_venue == {"kaide": 5}
        assert svc.stats.seconds > 0
        assert svc.stats.throughput > 0
        assert "kaide" in svc.stats.render()
        svc.reset_stats()
        assert svc.stats.queries == 0

    def test_stats_is_a_detached_snapshot(self, kaide_smoke):
        svc = PositioningService()
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        batch = scans(kaide_smoke, 3, 28)
        before = svc.stats
        svc.query_batch(["kaide"] * 3, batch)
        after = svc.stats
        # Old snapshots never move, and mutating a snapshot (incl.
        # its per_venue dict) cannot corrupt the live counters.
        assert before.queries == 0
        after.queries = 999
        after.per_venue["kaide"] = 999
        assert svc.stats.queries == 3
        assert svc.stats.per_venue == {"kaide": 3}

    def test_stats_snapshot_atomic_under_concurrent_traffic(
        self, kaide_smoke
    ):
        """A reader hammering ``stats`` during multi-threaded traffic
        must only ever see consistent snapshots — with caching on,
        ``queries == cache_hits + cache_misses`` and the per-venue
        counts summing to ``queries`` — never a torn mix of a batch's
        hits without its queries."""
        svc = PositioningService(cache_size=256)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        pool = np.round(scans(kaide_smoke, 16, 29))
        stop = threading.Event()
        torn: list = []

        def reader():
            while not stop.is_set():
                snap = svc.stats
                if snap.queries != snap.cache_hits + snap.cache_misses:
                    torn.append(
                        (
                            snap.queries,
                            snap.cache_hits,
                            snap.cache_misses,
                        )
                    )
                if sum(snap.per_venue.values()) != snap.queries:
                    torn.append(("per_venue", dict(snap.per_venue)))

        def writer(seed):
            rng = np.random.default_rng(seed)
            for _ in range(40):
                picks = rng.integers(0, len(pool), size=8)
                svc.query_batch(["kaide"] * 8, pool[picks])

        readers = [
            threading.Thread(target=reader) for _ in range(2)
        ]
        writers = [
            threading.Thread(target=writer, args=(s,))
            for s in range(4)
        ]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not torn, torn[:5]
        final = svc.stats
        assert final.queries == 4 * 40 * 8
        assert final.queries == final.cache_hits + final.cache_misses


@pytest.mark.slow
class TestBiSIMServing:
    """Full pipeline (differentiate → BiSIM impute → estimate) end to end."""

    def test_bisim_shard_serves_batches(self, kaide_smoke):
        svc = PositioningService()
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            TopoACDifferentiator(
                entities=kaide_smoke.venue.plan.entities
            ),
            estimator=WKNNEstimator(),
            bisim_config=BiSIMConfig(hidden_size=12, epochs=3),
        )
        shard = svc.shard("kaide")
        assert shard.online_imputer is not None
        batch = scans(kaide_smoke, 8, 9)
        out = svc.query_batch(["kaide"] * 8, batch)
        assert out.shape == (8, 2)
        assert np.isfinite(out).all()
        # Batched service answers == per-query shard answers.
        singles = np.stack(
            [svc.shard("kaide").locate(fp[None, :])[0] for fp in batch]
        )
        np.testing.assert_allclose(out, singles, atol=1e-8)
