"""PositioningService: sharding, routing, caching, stats."""

import numpy as np
import pytest

from repro.bisim import BiSIMConfig
from repro.core import MAROnlyDifferentiator, TopoACDifferentiator
from repro.exceptions import ServingError
from repro.positioning import KNNEstimator, WKNNEstimator
from repro.serving import PositioningService


@pytest.fixture(scope="module")
def service(kaide_smoke, longhu_smoke):
    """Two venues deployed on the instant (mean-fill) path."""
    svc = PositioningService(cache_size=64)
    for name, ds in (("kaide", kaide_smoke), ("longhu", longhu_smoke)):
        svc.deploy(
            name,
            ds.radio_map,
            TopoACDifferentiator(entities=ds.venue.plan.entities),
            estimator=WKNNEstimator(),
        )
    return svc


def scans(dataset, n, seed):
    rng = np.random.default_rng(seed)
    rps = dataset.venue.reference_points
    return np.stack(
        [
            dataset.channel.measure(rps[i % len(rps)], rng).rssi
            for i in range(n)
        ]
    )


class TestRouting:
    def test_venues_registered(self, service):
        assert service.venues == ("kaide", "longhu")

    def test_unknown_venue_rejected(self, service, kaide_smoke):
        with pytest.raises(ServingError, match="unknown venue"):
            service.query("mall99", scans(kaide_smoke, 1, 0)[0])

    def test_mixed_venue_batch_matches_per_venue(
        self, service, kaide_smoke, longhu_smoke
    ):
        """Interleaved venues route to the right shard, rows aligned."""
        ka = scans(kaide_smoke, 3, 1)
        lo = scans(longhu_smoke, 3, 2)
        venues = ["kaide", "longhu", "kaide", "longhu", "kaide", "longhu"]
        fps = [ka[0], lo[0], ka[1], lo[1], ka[2], lo[2]]
        mixed = service.query_batch(venues, fps)
        direct_ka = service.shard("kaide").locate(ka)
        direct_lo = service.shard("longhu").locate(lo)
        np.testing.assert_allclose(mixed[0::2], direct_ka)
        np.testing.assert_allclose(mixed[1::2], direct_lo)

    def test_single_query_shape(self, service, kaide_smoke):
        out = service.query("kaide", scans(kaide_smoke, 1, 3)[0])
        assert out.shape == (2,)

    def test_length_mismatch_rejected(self, service, kaide_smoke):
        with pytest.raises(ServingError, match="length mismatch"):
            service.query_batch(["kaide"], scans(kaide_smoke, 2, 4))

    def test_duplicate_registration_rejected(self, service, kaide_smoke):
        shard = service.shard("kaide")
        with pytest.raises(ServingError, match="already registered"):
            service.register(shard)


class TestCache:
    def test_repeat_query_hits_cache(self, kaide_smoke):
        svc = PositioningService(cache_size=16)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        fp = scans(kaide_smoke, 1, 5)[0]
        first = svc.query("kaide", fp)
        assert svc.stats.cache_hits == 0
        second = svc.query("kaide", fp)
        assert svc.stats.cache_hits == 1
        np.testing.assert_allclose(first, second)

    def test_lru_eviction_bound(self, kaide_smoke):
        svc = PositioningService(cache_size=4)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        batch = scans(kaide_smoke, 10, 6)
        svc.query_batch(["kaide"] * 10, batch)
        assert len(svc._cache) <= 4

    def test_cache_disabled(self, kaide_smoke):
        svc = PositioningService(cache_size=0)
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        fp = scans(kaide_smoke, 1, 7)[0]
        svc.query("kaide", fp)
        svc.query("kaide", fp)
        assert svc.stats.cache_hits == 0
        assert len(svc._cache) == 0


class TestStats:
    def test_counters_accumulate(self, kaide_smoke):
        svc = PositioningService()
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            MAROnlyDifferentiator(),
            estimator=KNNEstimator(),
        )
        batch = scans(kaide_smoke, 5, 8)
        svc.query_batch(["kaide"] * 5, batch)
        assert svc.stats.queries == 5
        assert svc.stats.batches == 1
        assert svc.stats.per_venue == {"kaide": 5}
        assert svc.stats.seconds > 0
        assert svc.stats.throughput > 0
        assert "kaide" in svc.stats.render()
        svc.reset_stats()
        assert svc.stats.queries == 0


@pytest.mark.slow
class TestBiSIMServing:
    """Full pipeline (differentiate → BiSIM impute → estimate) end to end."""

    def test_bisim_shard_serves_batches(self, kaide_smoke):
        svc = PositioningService()
        svc.deploy(
            "kaide",
            kaide_smoke.radio_map,
            TopoACDifferentiator(
                entities=kaide_smoke.venue.plan.entities
            ),
            estimator=WKNNEstimator(),
            bisim_config=BiSIMConfig(hidden_size=12, epochs=3),
        )
        shard = svc.shard("kaide")
        assert shard.online_imputer is not None
        batch = scans(kaide_smoke, 8, 9)
        out = svc.query_batch(["kaide"] * 8, batch)
        assert out.shape == (8, 2)
        assert np.isfinite(out).all()
        # Batched service answers == per-query shard answers.
        singles = np.stack(
            [svc.shard("kaide").locate(fp[None, :])[0] for fp in batch]
        )
        np.testing.assert_allclose(out, singles, atol=1e-8)
