"""ASCII venue rendering."""

import numpy as np
import pytest

from repro.exceptions import VenueError
from repro.venue import build_grid_mall
from repro.viz import (
    AsciiCanvas,
    cluster_legend,
    render_floorplan,
    render_observability,
)


@pytest.fixture
def plan():
    return build_grid_mall("t", 40.0, 30.0)


class TestCanvas:
    def test_dimensions(self):
        canvas = AsciiCanvas(40.0, 30.0, columns=60)
        text = canvas.render()
        lines = text.splitlines()
        assert lines[0] == "+" + "-" * 60 + "+"
        assert all(len(l) == 62 for l in lines)

    def test_put_in_bounds(self):
        canvas = AsciiCanvas(10.0, 10.0, columns=20)
        canvas.put(5.0, 5.0, "X")
        assert "X" in canvas.render()

    def test_put_out_of_bounds_ignored(self):
        canvas = AsciiCanvas(10.0, 10.0, columns=20)
        canvas.put(50.0, 50.0, "X")
        assert "X" not in canvas.render()

    def test_invalid_extent(self):
        with pytest.raises(VenueError):
            AsciiCanvas(0.0, 10.0)


class TestRenderers:
    def test_rooms_hatched(self, plan):
        text = render_floorplan(plan)
        assert "#" in text

    def test_points_drawn(self, plan):
        pts = np.array([[20.0, 15.0]])
        text = render_floorplan(plan, points=pts)
        assert "*" in text

    def test_cluster_symbols(self, plan):
        pts = np.array([[20.0, 15.0], [10.0, 15.0], [30.0, 15.0]])
        text = render_floorplan(plan, points=pts, labels=[0, 1, 1])
        assert "0" in text and "1" in text

    def test_observability_markers(self, plan):
        rps = np.array([[20.0, 15.0], [10.0, 15.0]])
        text = render_observability(plan, rps, [True, False])
        assert "O" in text and "x" in text

    def test_cluster_legend(self):
        legend = cluster_legend([0, 0, 1, 2, 2, 2])
        assert "0=2" in legend and "1=1" in legend and "2=3" in legend
