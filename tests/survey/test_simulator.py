"""End-to-end walking-survey simulation."""

import numpy as np
import pytest

from repro.exceptions import SurveyError
from repro.radio import make_channel
from repro.survey import (
    RPRecord,
    RSSIRecord,
    SurveyConfig,
    simulate_survey,
)
from repro.venue import build_venue


@pytest.fixture(scope="module")
def survey():
    venue = build_venue("kaide", scale=0.3, seed=3)
    channel = make_channel(
        venue.plan, venue.access_points, venue.channel_kind
    )
    rng = np.random.default_rng(0)
    tables = simulate_survey(
        venue, channel, SurveyConfig(n_passes=1), rng
    )
    return venue, channel, tables


class TestSimulation:
    def test_tables_nonempty(self, survey):
        _, _, tables = survey
        assert len(tables) > 0
        assert all(len(t) >= 2 for t in tables)

    def test_records_sorted(self, survey):
        _, _, tables = survey
        for t in tables:
            times = [r.time for r in t.records]
            assert times == sorted(times)

    def test_contains_both_record_types(self, survey):
        _, _, tables = survey
        all_records = [r for t in tables for r in t.records]
        assert any(isinstance(r, RPRecord) for r in all_records)
        assert any(isinstance(r, RSSIRecord) for r in all_records)

    def test_rp_records_match_preselected_rps(self, survey):
        venue, _, tables = survey
        rp_set = {tuple(rp) for rp in venue.reference_points}
        for t in tables:
            for r in t.rp_records:
                assert tuple(r.location) in rp_set

    def test_rssi_truth_attached(self, survey):
        _, channel, tables = survey
        for t in tables:
            for r in t.rssi_records:
                assert r.truth is not None
                assert r.truth.missing_type is not None
                assert r.truth.missing_type.shape == (channel.n_aps,)

    def test_truth_position_near_rp_for_rp_records(self, survey):
        # The surveyor's true position when logging an RP should be
        # close to it (within snap distance + jitter drift).
        _, _, tables = survey
        for t in tables:
            for r in t.rp_records:
                d = np.linalg.norm(
                    np.array(r.truth.position) - np.array(r.location)
                )
                assert d < 6.0

    def test_readings_only_observed_aps(self, survey):
        _, _, tables = survey
        for t in tables:
            for r in t.rssi_records:
                for ap, val in r.readings.items():
                    assert np.isfinite(val)
                    assert r.truth.missing_type[ap] == 1


class TestConfig:
    def test_invalid_speed(self):
        with pytest.raises(SurveyError):
            SurveyConfig(walking_speed=0.0)

    def test_invalid_scan_interval(self):
        with pytest.raises(SurveyError):
            SurveyConfig(scan_interval=0.0)
