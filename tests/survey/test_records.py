"""Survey record table semantics."""

import numpy as np
import pytest

from repro.exceptions import SurveyError
from repro.survey import RPRecord, RSSIRecord, WalkingSurveyRecordTable


class TestRecordTable:
    def test_sort_orders_by_time(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=3)
        t.add(RSSIRecord(time=5.0, readings={0: -70.0}))
        t.add(RPRecord(time=1.0, location=(0.0, 0.0)))
        t.sort()
        assert [r.time for r in t.records] == [1.0, 5.0]

    def test_validate_rejects_unsorted(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=3)
        t.records = [
            RSSIRecord(time=5.0, readings={0: -70.0}),
            RPRecord(time=1.0, location=(0.0, 0.0)),
        ]
        with pytest.raises(SurveyError):
            t.validate()

    def test_validate_rejects_bad_ap_id(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=2)
        t.add(RSSIRecord(time=1.0, readings={5: -70.0}))
        with pytest.raises(SurveyError):
            t.validate()

    def test_validate_rejects_nonfinite_reading(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=2)
        t.add(RSSIRecord(time=1.0, readings={0: float("nan")}))
        with pytest.raises(SurveyError):
            t.validate()

    def test_record_type_partition(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=2)
        t.add(RPRecord(time=0.0, location=(1.0, 2.0)))
        t.add(RSSIRecord(time=1.0, readings={0: -50.0}))
        t.add(RSSIRecord(time=2.0, readings={1: -60.0}))
        assert len(t.rp_records) == 1
        assert len(t.rssi_records) == 2
        assert len(t) == 3

    def test_duration(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=2)
        assert t.duration() == 0.0
        t.add(RPRecord(time=2.0, location=(0.0, 0.0)))
        t.add(RSSIRecord(time=9.0, readings={0: -50.0}))
        assert t.duration() == pytest.approx(7.0)
