"""Survey-path planning: edge coverage and RP ordering."""

import numpy as np
import pytest

from repro.exceptions import SurveyError
from repro.survey import plan_survey_paths, rps_on_path
from repro.venue import build_grid_mall


@pytest.fixture
def plan():
    return build_grid_mall("t", 40.0, 30.0)


class TestPlanning:
    def test_paths_cover_all_edges(self, plan, rng):
        paths = plan_survey_paths(plan, rng)
        graph = plan.hallway_graph
        pos = plan.node_positions()
        remaining = {
            frozenset(
                (tuple(np.round(pos[a], 4)), tuple(np.round(pos[b], 4)))
            )
            for a, b in graph.edges()
        }
        for wp in paths:
            for a, b in zip(wp[:-1], wp[1:]):
                remaining.discard(
                    frozenset(
                        (tuple(np.round(a, 4)), tuple(np.round(b, 4)))
                    )
                )
        assert not remaining

    def test_n_passes_multiplies_paths(self, plan, rng):
        one = plan_survey_paths(plan, np.random.default_rng(0), n_passes=1)
        three = plan_survey_paths(
            plan, np.random.default_rng(0), n_passes=3
        )
        total_one = sum(p.shape[0] - 1 for p in one)
        total_three = sum(p.shape[0] - 1 for p in three)
        assert total_three == 3 * total_one

    def test_paths_have_at_least_two_waypoints(self, plan, rng):
        for wp in plan_survey_paths(plan, rng):
            assert wp.shape[0] >= 2

    def test_zero_passes_rejected(self, plan, rng):
        with pytest.raises(SurveyError):
            plan_survey_paths(plan, rng, n_passes=0)


class TestRPsOnPath:
    def test_ordered_by_arc_length(self):
        waypoints = np.array([[0.0, 0.0], [10.0, 0.0]])
        rps = np.array([[8.0, 0.1], [2.0, -0.1], [5.0, 0.0]])
        order = rps_on_path(waypoints, rps, tolerance=0.5)
        assert order == [1, 2, 0]

    def test_far_rps_excluded(self):
        waypoints = np.array([[0.0, 0.0], [10.0, 0.0]])
        rps = np.array([[5.0, 5.0], [5.0, 0.2]])
        assert rps_on_path(waypoints, rps, tolerance=1.0) == [1]

    def test_empty_when_no_rps_near(self):
        waypoints = np.array([[0.0, 0.0], [1.0, 0.0]])
        rps = np.array([[50.0, 50.0]])
        assert rps_on_path(waypoints, rps) == []
