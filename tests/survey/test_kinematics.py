"""Surveyor kinematics: time/arc maps and pauses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SurveyError
from repro.survey import PathKinematics

WAYPOINTS = np.array([[0.0, 0.0], [20.0, 0.0], [20.0, 10.0]])


class TestKinematics:
    def test_duration_positive(self, rng):
        kin = PathKinematics(WAYPOINTS, rng)
        assert kin.duration > 0
        assert kin.total_length == pytest.approx(30.0)

    def test_position_endpoints(self, rng):
        kin = PathKinematics(WAYPOINTS, rng)
        assert kin.position(0.0) == pytest.approx([0.0, 0.0])
        assert kin.position(kin.duration) == pytest.approx([20.0, 10.0])

    def test_arc_monotone_in_time(self, rng):
        kin = PathKinematics(WAYPOINTS, rng)
        ts = np.linspace(0, kin.duration, 50)
        arcs = [kin.arc_at_time(t) for t in ts]
        assert all(b >= a - 1e-9 for a, b in zip(arcs, arcs[1:]))

    def test_time_arc_inverse(self, rng):
        kin = PathKinematics(
            WAYPOINTS, rng, pause_probability=0.0
        )
        for s in np.linspace(0, kin.total_length, 17):
            t = kin.time_at_arc(s)
            assert kin.arc_at_time(t) == pytest.approx(float(s), abs=1e-6)

    def test_pauses_extend_duration(self):
        no_pause = PathKinematics(
            WAYPOINTS,
            np.random.default_rng(3),
            pause_probability=0.0,
            speed_jitter=0.0,
        )
        always_pause = PathKinematics(
            WAYPOINTS,
            np.random.default_rng(3),
            pause_probability=1.0,
            pause_duration=5.0,
            speed_jitter=0.0,
        )
        assert always_pause.duration > no_pause.duration

    def test_constant_speed_duration(self):
        kin = PathKinematics(
            WAYPOINTS,
            np.random.default_rng(0),
            base_speed=1.5,
            speed_jitter=0.0,
            pause_probability=0.0,
        )
        assert kin.duration == pytest.approx(30.0 / 1.5)

    def test_invalid_speed(self, rng):
        with pytest.raises(SurveyError):
            PathKinematics(WAYPOINTS, rng, base_speed=0.0)

    def test_single_waypoint_rejected(self, rng):
        with pytest.raises(SurveyError):
            PathKinematics(np.array([[0.0, 0.0]]), rng)

    @given(st.floats(min_value=-10, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_position_always_on_path_bbox(self, t):
        kin = PathKinematics(WAYPOINTS, np.random.default_rng(5))
        p = kin.position(t)
        assert -1e-9 <= p[0] <= 20 + 1e-9
        assert -1e-9 <= p[1] <= 10 + 1e-9
