"""Finite-difference verification of every op used by the models."""

import numpy as np
import pytest

from repro.neuro import (
    MLP,
    Linear,
    LSTMCell,
    Parameter,
    SimpleRecurrentCell,
    Tensor,
    check_gradients,
    concat,
    masked_mae,
    masked_mse,
    mse,
    take,
)

RNG = np.random.default_rng(7)


def _p(*shape) -> Parameter:
    return Parameter(RNG.normal(scale=0.5, size=shape))


class TestElementwiseGrads:
    def test_add_mul_div(self):
        a, b = _p(3, 4), _p(3, 4)
        check_gradients(
            lambda: ((a + b) * a / (b + 5.0)).sum(), [a, b]
        )

    def test_broadcasting(self):
        a, b = _p(3, 4), _p(1, 4)
        check_gradients(lambda: (a * b + b).sum(), [a, b])

    def test_pow(self):
        a = Parameter(np.abs(RNG.normal(size=(4,))) + 0.5)
        check_gradients(lambda: (a**3).sum(), [a])

    def test_exp_log(self):
        a = Parameter(np.abs(RNG.normal(size=(4,))) + 0.5)
        check_gradients(lambda: (a.exp() + a.log()).sum(), [a])

    def test_activations(self):
        a = _p(5)
        check_gradients(
            lambda: (a.sigmoid() + a.tanh()).sum(), [a]
        )

    def test_relu_away_from_kink(self):
        a = Parameter(np.array([-2.0, -0.5, 0.7, 3.0]))
        check_gradients(lambda: a.relu().sum(), [a])

    def test_softmax(self):
        a = _p(3, 5)
        w = Tensor(RNG.normal(size=(3, 5)))
        check_gradients(
            lambda: (a.softmax(axis=1) * w).sum(), [a]
        )


class TestShapeOpGrads:
    def test_matmul(self):
        a, b = _p(3, 4), _p(4, 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_getitem(self):
        a = _p(4, 6)
        check_gradients(lambda: (a[:, 1:4] * 2.0).sum(), [a])

    def test_concat(self):
        a, b = _p(2, 3), _p(2, 2)
        w = Tensor(RNG.normal(size=(2, 5)))
        check_gradients(
            lambda: (concat([a, b], axis=1) * w).sum(), [a, b]
        )

    def test_take_gathers_with_repeats(self):
        a = _p(5, 3)
        w = Tensor(RNG.normal(size=(4, 3)))
        check_gradients(
            lambda: (take(a, [0, 2, 2, 4], axis=0) * w).sum(), [a]
        )

    def test_take_along_columns(self):
        a = _p(3, 6)
        check_gradients(
            lambda: (take(a, [5, 0, 1], axis=1) * 2.0).sum(), [a]
        )

    def test_reshape_transpose(self):
        a = _p(3, 4)
        check_gradients(lambda: (a.reshape(4, 3).T * 2.0).sum(), [a])

    def test_mean_axis(self):
        a = _p(3, 4)
        check_gradients(lambda: a.mean(axis=0).sum(), [a])


class TestLayerGrads:
    def test_linear(self):
        lin = Linear(4, 3, RNG)
        x = Tensor(RNG.normal(size=(5, 4)))
        check_gradients(lambda: lin(x).sum(), lin.parameters())

    def test_mlp(self):
        mlp = MLP([4, 6, 1], RNG)
        x = Tensor(RNG.normal(size=(3, 4)))
        check_gradients(lambda: mlp(x).sum(), mlp.parameters())

    def test_lstm_cell(self):
        cell = LSTMCell(3, 4, RNG)
        x = Tensor(RNG.normal(size=(2, 3)))

        def fn():
            h, c = cell.initial_state(2)
            h, c = cell(x, (h, c))
            h, c = cell(x, (h, c))  # two steps to test recurrence
            return h.sum()

        check_gradients(fn, cell.parameters())

    def test_simple_cell(self):
        cell = SimpleRecurrentCell(3, 4, RNG)
        x = Tensor(RNG.normal(size=(2, 3)))

        def fn():
            state = cell.initial_state(2)
            h, _ = cell(x, state)
            return h.sum()

        check_gradients(fn, cell.parameters())


class TestLossGrads:
    def test_mse(self):
        a = _p(3, 4)
        t = Tensor(RNG.normal(size=(3, 4)))
        check_gradients(lambda: mse(a, t), [a])

    def test_masked_mse(self):
        a = _p(3, 4)
        t = Tensor(RNG.normal(size=(3, 4)))
        mask = (RNG.random((3, 4)) > 0.4).astype(float)
        check_gradients(lambda: masked_mse(a, t, mask), [a])

    def test_masked_mse_ignores_masked_entries(self):
        a = Parameter(np.zeros((1, 2)))
        t = Tensor(np.array([[1.0, 100.0]]))
        mask = np.array([[1.0, 0.0]])
        loss = masked_mse(a, t, mask)
        loss.backward()
        assert a.grad[0, 1] == 0.0
        assert a.grad[0, 0] != 0.0

    def test_masked_mae(self):
        a = _p(2, 3)
        t = Tensor(RNG.normal(size=(2, 3)))
        mask = np.ones((2, 3))
        check_gradients(lambda: masked_mae(a, t, mask), [a])

    def test_mask_must_be_binary(self):
        a = _p(1, 2)
        with pytest.raises(Exception):
            masked_mse(a, a, np.array([[0.5, 1.0]]))
