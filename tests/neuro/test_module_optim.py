"""Module machinery and optimisers."""

import numpy as np
import pytest

from repro.exceptions import NeuroError
from repro.neuro import (
    MLP,
    Adam,
    Linear,
    Module,
    Parameter,
    SGD,
    Tensor,
)

RNG = np.random.default_rng(3)


class TestModule:
    def test_named_parameters_nested(self):
        mlp = MLP([2, 3, 1], RNG)
        names = [n for n, _ in mlp.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names
        assert len(names) == 4

    def test_n_parameters(self):
        lin = Linear(4, 3, RNG)
        assert lin.n_parameters() == 4 * 3 + 3

    def test_zero_grad(self):
        lin = Linear(2, 2, RNG)
        out = lin(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_round_trip(self):
        a = MLP([2, 4, 1], RNG)
        b = MLP([2, 4, 1], RNG)
        b.load_state_dict(a.state_dict())
        x = Tensor(RNG.normal(size=(3, 2)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_mismatch(self):
        a = MLP([2, 4, 1], RNG)
        state = a.state_dict()
        del state["layers.0.weight"]
        with pytest.raises(NeuroError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch(self):
        a = Linear(2, 2, RNG)
        state = a.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(NeuroError):
            a.load_state_dict(state)

    def test_bias_optional(self):
        lin = Linear(3, 2, RNG, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1


def _quadratic_problem():
    target = np.array([3.0, -2.0])
    p = Parameter(np.zeros(2))

    def loss():
        diff = p - Tensor(target)
        return (diff * diff).sum()

    return p, loss, target


class TestOptimisers:
    def test_sgd_converges(self):
        p, loss, target = _quadratic_problem()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        p, loss, target = _quadratic_problem()
        opt = SGD([p], lr=0.02, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_adam_converges(self):
        p, loss, target = _quadratic_problem()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_clip_gradients(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        p.grad = np.full(4, 100.0)
        norm = opt.clip_gradients(1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([0.1, 0.1])
        opt.clip_gradients(10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])

    def test_invalid_lr(self):
        with pytest.raises(NeuroError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params(self):
        with pytest.raises(NeuroError):
            Adam([], lr=0.1)

    def test_step_skips_gradless_params(self):
        p = Parameter(np.ones(2))
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad set; must not crash or move
        np.testing.assert_allclose(p.data, [1.0, 1.0])


class TestClipGradientsReturn:
    """clip_gradients returns the pre-clip global norm in every case."""

    def test_returns_preclip_norm_when_clipping(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.1)
        p.grad = np.full(4, 3.0)
        norm = opt.clip_gradients(1.0)
        assert norm == pytest.approx(6.0)  # sqrt(4 * 9)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_returns_norm_without_clipping(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([3.0, 4.0])
        norm = opt.clip_gradients(100.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(p.grad, [3.0, 4.0])

    def test_zero_when_no_gradients(self):
        p = Parameter(np.zeros(2))  # grad is None
        opt = SGD([p], lr=0.1)
        assert opt.clip_gradients(1.0) == 0.0

    def test_global_norm_spans_parameters(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt = SGD([a, b], lr=0.1)
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        assert opt.clip_gradients(10.0) == pytest.approx(5.0)

    def test_nonpositive_max_norm_never_clips(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([3.0, 4.0])
        assert opt.clip_gradients(0.0) == pytest.approx(5.0)
        np.testing.assert_allclose(p.grad, [3.0, 4.0])


class TestModuleCheckpoint:
    """Module.save/load: weight checkpoints as validated artifacts."""

    def test_round_trip(self, tmp_path):
        a = MLP([2, 4, 1], RNG)
        b = MLP([2, 4, 1], RNG)
        path = tmp_path / "mlp.npz"
        a.save(path)
        b.load(path)
        x = Tensor(RNG.normal(size=(3, 2)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_class_mismatch_rejected(self, tmp_path):
        path = tmp_path / "lin.npz"
        Linear(2, 2, RNG).save(path)
        with pytest.raises(NeuroError, match="checkpoint is for"):
            MLP([2, 2, 2], RNG).load(path)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = tmp_path / "lin.npz"
        Linear(2, 2, RNG).save(path)
        with pytest.raises(NeuroError, match="shape mismatch"):
            Linear(3, 3, RNG).load(path)

    def test_corrupt_file_rejected(self, tmp_path):
        from repro.exceptions import ArtifactError

        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(ArtifactError):
            Linear(2, 2, RNG).load(path)
