"""Property-based tests of autodiff broadcasting and reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neuro import Parameter, Tensor

shapes = st.sampled_from(
    [
        ((3, 4), (3, 4)),
        ((3, 4), (1, 4)),
        ((3, 4), (3, 1)),
        ((3, 4), (4,)),
        ((1, 5), (4, 5)),
        ((2, 1), (2, 6)),
    ]
)
ops = st.sampled_from(["add", "mul", "sub"])


def _apply(op, a, b):
    if op == "add":
        return a + b
    if op == "mul":
        return a * b
    return a - b


class TestBroadcastingGrads:
    @given(shapes, ops)
    @settings(max_examples=60, deadline=None)
    def test_grad_shapes_match_parameters(self, shape_pair, op):
        sa, sb = shape_pair
        rng = np.random.default_rng(0)
        a = Parameter(rng.normal(size=sa))
        b = Parameter(rng.normal(size=sb))
        out = _apply(op, a, b).sum()
        out.backward()
        assert a.grad.shape == sa
        assert b.grad.shape == sb

    @given(shapes)
    @settings(max_examples=40, deadline=None)
    def test_sum_gradient_is_count_of_broadcasts(self, shape_pair):
        sa, sb = shape_pair
        a = Parameter(np.zeros(sa))
        b = Parameter(np.zeros(sb))
        (a + b).sum().backward()
        # d(sum)/da = 1 broadcast over the output shape, reduced back.
        out_shape = np.broadcast_shapes(sa, sb)
        expected_a = np.ones(out_shape).sum() / np.ones(sa).sum()
        assert np.allclose(a.grad, expected_a)


class TestReductionConsistency:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_equals_sum_over_count(self, n, m):
        rng = np.random.default_rng(n * 10 + m)
        x = Tensor(rng.normal(size=(n, m)))
        assert x.mean().item() == pytest.approx(
            x.sum().item() / (n * m)
        )

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_axis_sums_compose(self, n):
        rng = np.random.default_rng(n)
        x = Tensor(rng.normal(size=(n, 3)))
        assert x.sum(axis=0).sum().item() == pytest.approx(
            x.sum().item()
        )


class TestSoftmaxProperties:
    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_rows_are_distributions(self, m):
        rng = np.random.default_rng(m)
        x = Tensor(rng.normal(scale=3.0, size=(4, m)))
        s = x.softmax(axis=1).data
        assert (s > 0).all()
        np.testing.assert_allclose(s.sum(axis=1), 1.0)

    @given(st.floats(min_value=-50, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_shift_invariance(self, c):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 5))
        a = Tensor(x).softmax(axis=1).data
        b = Tensor(x + c).softmax(axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_softmax_grad_sums_to_zero(self):
        # Softmax outputs are constrained to a simplex, so gradients
        # along the constraint direction vanish.
        p = Parameter(np.random.default_rng(0).normal(size=(3, 4)))
        w = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        (p.softmax(axis=1) * w).sum().backward()
        np.testing.assert_allclose(
            p.grad.sum(axis=1), 0.0, atol=1e-12
        )
