"""Tensor ops: forward correctness and basic gradient flow."""

import numpy as np
import pytest

from repro.exceptions import NeuroError
from repro.neuro import Tensor, concat, stack


class TestForward:
    def test_arithmetic(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).data, [4, 6])
        np.testing.assert_allclose((a - b).data, [-2, -2])
        np.testing.assert_allclose((a * b).data, [3, 8])
        np.testing.assert_allclose((a / b).data, [1 / 3, 0.5])
        np.testing.assert_allclose((-a).data, [-1, -2])
        np.testing.assert_allclose((a**2).data, [1, 4])

    def test_scalar_broadcasting(self):
        a = Tensor([[1.0, 2.0]])
        np.testing.assert_allclose((1.0 - a).data, [[0, -1]])
        np.testing.assert_allclose((2.0 * a).data, [[2, 4]])
        np.testing.assert_allclose((a + 1).data, [[2, 3]])

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.ones((3, 2)))
        np.testing.assert_allclose((a @ b).data, [[3, 3], [12, 12]])

    def test_matmul_requires_2d(self):
        with pytest.raises(NeuroError):
            Tensor([1.0]) @ Tensor([1.0])

    def test_reductions(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert a.sum().item() == 10.0
        assert a.mean().item() == 2.5
        np.testing.assert_allclose(a.sum(axis=0).data, [4, 6])
        np.testing.assert_allclose(
            a.mean(axis=1, keepdims=True).data, [[1.5], [3.5]]
        )

    def test_activations(self):
        a = Tensor([-1.0, 0.0, 1.0])
        np.testing.assert_allclose(
            a.sigmoid().data, 1 / (1 + np.exp([1, 0, -1]))
        )
        np.testing.assert_allclose(a.tanh().data, np.tanh([-1, 0, 1]))
        np.testing.assert_allclose(a.relu().data, [0, 0, 1])
        np.testing.assert_allclose(a.exp().data, np.exp([-1, 0, 1]))

    def test_softmax_rows_sum_to_one(self):
        a = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        s = a.softmax(axis=1)
        np.testing.assert_allclose(s.data.sum(axis=1), np.ones(4))

    def test_softmax_stable_for_large_inputs(self):
        a = Tensor([[1000.0, 1000.0]])
        np.testing.assert_allclose(a.softmax(axis=1).data, [[0.5, 0.5]])

    def test_getitem_slice(self):
        a = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        np.testing.assert_allclose(
            a[:, 1:3].data, [[1, 2], [5, 6], [9, 10]]
        )

    def test_reshape_and_transpose(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert a.reshape(3, 2).shape == (3, 2)
        assert a.T.shape == (3, 2)

    def test_concat_and_stack(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        assert concat([a, b], axis=1).shape == (2, 5)
        assert stack([a, Tensor(np.zeros((2, 2)))], axis=0).shape == (
            2,
            2,
            2,
        )

    def test_concat_empty_rejected(self):
        with pytest.raises(NeuroError):
            concat([])


class TestBackwardBasics:
    def test_leaf_grad_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [3.0])
        z = x * 2.0
        z.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [5.0])  # accumulated

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        y = a + b
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [5.0])

    def test_reuse_in_same_expression(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x  # d/dx = 2x
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [6.0])

    def test_broadcast_grad_reduction(self):
        x = Tensor(np.ones((1, 3)), requires_grad=True)
        y = Tensor(np.ones((4, 3))) * x
        y.sum().backward()
        assert x.grad.shape == (1, 3)
        np.testing.assert_allclose(x.grad, [[4.0, 4.0, 4.0]])

    def test_bias_broadcast_grad(self):
        b = Tensor(np.zeros(3), requires_grad=True)
        y = Tensor(np.ones((5, 3))) + b
        y.sum().backward()
        np.testing.assert_allclose(b.grad, [5.0, 5.0, 5.0])

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(NeuroError):
            (x * 2).backward()

    def test_backward_without_grad_flag(self):
        x = Tensor([1.0])
        with pytest.raises(NeuroError):
            x.backward()

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach() * 3.0
        assert not y.requires_grad

    def test_no_grad_tracking_for_plain_tensors(self):
        a = Tensor([1.0]) + Tensor([2.0])
        assert not a.requires_grad
        assert a._parents == ()
