"""TopoAC: the ENTITYEXIST heuristic and Algorithm 5."""

import numpy as np
import pytest

from repro.core import (
    TopoACDifferentiator,
    build_cluster_samples,
    entity_exist,
    validate_mask,
)
from repro.exceptions import DifferentiationError
from repro.geometry import MultiPolygon, Polygon


@pytest.fixture
def room() -> MultiPolygon:
    return MultiPolygon([Polygon.rectangle(4, 4, 6, 6)])


class TestEntityExist:
    def test_hull_containing_room(self, room):
        locs = np.array([[0, 0], [10, 0], [10, 10], [0, 10]])
        assert entity_exist(locs, room)

    def test_hull_beside_room(self, room):
        locs = np.array([[0, 0], [3, 0], [3, 3], [0, 3]])
        assert not entity_exist(locs, room)

    def test_single_point_inside_room(self, room):
        assert entity_exist(np.array([[5.0, 5.0]]), room)

    def test_single_point_outside_room(self, room):
        assert not entity_exist(np.array([[1.0, 1.0]]), room)

    def test_two_points_crossing_room(self, room):
        locs = np.array([[0.0, 5.0], [10.0, 5.0]])
        assert entity_exist(locs, room)

    def test_two_points_clear(self, room):
        locs = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert not entity_exist(locs, room)

    def test_collinear_points_crossing(self, room):
        locs = np.array([[0.0, 5.0], [5.0, 5.0], [10.0, 5.0]])
        assert entity_exist(locs, room)

    def test_no_entities(self):
        locs = np.array([[0, 0], [10, 0], [5, 10]])
        assert not entity_exist(locs, MultiPolygon())

    def test_bad_shape(self, room):
        with pytest.raises(DifferentiationError):
            entity_exist(np.zeros(3), room)


class TestTopoACDifferentiator:
    def test_mask_valid(self, kaide_smoke):
        topo = TopoACDifferentiator(
            entities=kaide_smoke.venue.plan.entities
        )
        mask = topo.differentiate(kaide_smoke.radio_map)
        validate_mask(mask, kaide_smoke.radio_map)
        assert topo.n_clusters_ is not None
        assert topo.n_clusters_ >= 1

    def test_no_cluster_hull_contains_entities(self, kaide_smoke):
        from repro.cluster import constrained_agglomerative

        entities = kaide_smoke.venue.plan.entities
        samples = build_cluster_samples(kaide_smoke.radio_map)
        clusters = constrained_agglomerative(
            samples.samples,
            lambda idx: not entity_exist(
                samples.locations[idx], entities
            ),
        )
        for members in clusters:
            if members.size >= 2:
                assert not entity_exist(
                    samples.locations[members], entities
                )

    def test_no_entities_gives_single_cluster(self, kaide_smoke):
        topo = TopoACDifferentiator(entities=MultiPolygon())
        topo.differentiate(kaide_smoke.radio_map)
        assert topo.n_clusters_ == 1
