"""Algorithm 2's eta rule and the baseline differentiators."""

import numpy as np
import pytest

from repro.constants import MASK_MAR, MASK_MNAR, MASK_OBSERVED
from repro.core import (
    MAROnlyDifferentiator,
    MNAROnlyDifferentiator,
    differentiate_with_clusters,
    validate_mask,
)
from repro.exceptions import DifferentiationError


class TestEtaRule:
    def test_mar_when_fraction_above_eta(self):
        # Cluster of 4: AP 0 observed by 3/4 (> 0.5) -> null is MAR;
        # AP 1 observed by 1/4 (<= 0.5 is false... 0.25 <= 0.5) -> MNAR.
        profiles = np.array(
            [
                [1.0, 1.0],
                [1.0, 0.0],
                [1.0, 0.0],
                [0.0, 0.0],
            ]
        )
        mask = differentiate_with_clusters(
            profiles, [np.arange(4)], eta=0.5
        )
        assert mask[3, 0] == MASK_MAR
        assert mask[1, 1] == MASK_MNAR
        assert mask[0, 0] == MASK_OBSERVED

    def test_eta_zero_all_mar_when_any_observed(self):
        profiles = np.array([[1.0, 0.0], [0.0, 0.0]])
        mask = differentiate_with_clusters(
            profiles, [np.arange(2)], eta=0.0
        )
        # AP 0 observed fraction 0.5 > 0 -> MAR; AP 1 fraction 0 -> MNAR.
        assert mask[1, 0] == MASK_MAR
        assert mask[0, 1] == MASK_MNAR

    def test_eta_one_all_mnar(self):
        profiles = np.array([[1.0, 1.0], [0.0, 1.0]])
        mask = differentiate_with_clusters(
            profiles, [np.arange(2)], eta=1.0
        )
        assert mask[1, 0] == MASK_MNAR

    def test_per_cluster_independence(self):
        profiles = np.array(
            [
                [1.0],  # cluster A: fraction 1.0
                [0.0],  # cluster A: null -> MAR
                [0.0],  # cluster B: fraction 0 -> MNAR
                [0.0],
            ]
        )
        mask = differentiate_with_clusters(
            profiles,
            [np.array([0, 1]), np.array([2, 3])],
            eta=0.1,
        )
        assert mask[1, 0] == MASK_MAR
        assert mask[2, 0] == MASK_MNAR
        assert mask[3, 0] == MASK_MNAR

    def test_clusters_must_partition(self):
        profiles = np.zeros((3, 2))
        with pytest.raises(DifferentiationError):
            differentiate_with_clusters(profiles, [np.array([0, 1])])
        with pytest.raises(DifferentiationError):
            differentiate_with_clusters(
                profiles, [np.array([0, 1]), np.array([1, 2])]
            )

    def test_invalid_eta(self):
        with pytest.raises(DifferentiationError):
            differentiate_with_clusters(
                np.zeros((2, 2)), [np.arange(2)], eta=1.5
            )


class TestBaselines:
    def test_mar_only(self, tiny_radio_map):
        mask = MAROnlyDifferentiator().differentiate(tiny_radio_map)
        validate_mask(mask, tiny_radio_map)
        missing = ~tiny_radio_map.rssi_observed_mask
        assert (mask[missing] == MASK_MAR).all()

    def test_mnar_only(self, tiny_radio_map):
        mask = MNAROnlyDifferentiator().differentiate(tiny_radio_map)
        validate_mask(mask, tiny_radio_map)
        missing = ~tiny_radio_map.rssi_observed_mask
        assert (mask[missing] == MASK_MNAR).all()


class TestValidateMask:
    def test_shape_mismatch(self, tiny_radio_map):
        with pytest.raises(DifferentiationError):
            validate_mask(np.ones((2, 2), dtype=int), tiny_radio_map)

    def test_invalid_codes(self, tiny_radio_map):
        mask = MAROnlyDifferentiator().differentiate(tiny_radio_map)
        mask[0, 0] = 7
        with pytest.raises(DifferentiationError):
            validate_mask(mask, tiny_radio_map)

    def test_observed_must_be_one(self, tiny_radio_map):
        mask = MAROnlyDifferentiator().differentiate(tiny_radio_map)
        mask[0, 0] = MASK_MAR  # (0, 0) is observed in the tiny map
        with pytest.raises(DifferentiationError):
            validate_mask(mask, tiny_radio_map)

    def test_missing_cannot_be_one(self, tiny_radio_map):
        mask = MAROnlyDifferentiator().differentiate(tiny_radio_map)
        mask[0, 3] = MASK_OBSERVED  # (0, 3) is null
        with pytest.raises(DifferentiationError):
            validate_mask(mask, tiny_radio_map)
