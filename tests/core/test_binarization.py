"""Algorithm 1 (BINARIZATION) and sample construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import binarize, build_cluster_samples
from repro.exceptions import DifferentiationError


class TestBinarize:
    def test_paper_semantics(self):
        fp = np.array([[-70.0, np.nan, -76.0]])
        np.testing.assert_array_equal(binarize(fp), [[1.0, 0.0, 1.0]])

    def test_all_null(self):
        fp = np.full((2, 3), np.nan)
        assert binarize(fp).sum() == 0

    def test_shape_validation(self):
        with pytest.raises(DifferentiationError):
            binarize(np.zeros(3))

    @given(
        arrays(
            np.float64,
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=1, max_value=8),
            ),
            elements=st.one_of(
                st.floats(min_value=-99, max_value=0), st.just(np.nan)
            ),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_binary_output_matches_finiteness(self, fp):
        b = binarize(fp)
        assert set(np.unique(b)).issubset({0.0, 1.0})
        np.testing.assert_array_equal(b == 1.0, np.isfinite(fp))


class TestBuildClusterSamples:
    def test_shapes(self, tiny_radio_map):
        samples = build_cluster_samples(tiny_radio_map)
        n, d = tiny_radio_map.fingerprints.shape
        assert samples.profiles.shape == (n, d)
        assert samples.locations.shape == (n, 2)
        assert samples.samples.shape == (n, d + 2)

    def test_locations_interpolated(self, tiny_radio_map):
        samples = build_cluster_samples(tiny_radio_map)
        assert np.isfinite(samples.locations).all()

    def test_location_weight_scales_location_part(self, tiny_radio_map):
        light = build_cluster_samples(tiny_radio_map, location_weight=0.5)
        heavy = build_cluster_samples(tiny_radio_map, location_weight=2.0)
        d = tiny_radio_map.n_aps
        np.testing.assert_allclose(
            heavy.samples[:, d:], 4.0 * light.samples[:, d:]
        )
        np.testing.assert_array_equal(
            heavy.samples[:, :d], light.samples[:, :d]
        )
