"""DasaKM: ground-truth sampling, DA evaluation, Algorithm 3."""

import numpy as np
import pytest

from repro.core import (
    DasaKMDifferentiator,
    build_cluster_samples,
    evaluate_da_for_k,
    sample_ground_truth,
    validate_mask,
)


@pytest.fixture(scope="module")
def smoke_samples(kaide_smoke):
    return build_cluster_samples(kaide_smoke.radio_map)


class TestGroundTruthSampling:
    def test_gamma_proportion(self, smoke_samples, rng):
        gt = sample_ground_truth(smoke_samples, 2.0, rng, n_mnars=20)
        assert gt is not None
        labels = [lbl for _, _, lbl in gt.entries]
        n_mnar = labels.count(-1)
        n_mar = labels.count(0)
        assert n_mar == max(1, round(n_mnar / 2.0))

    def test_mar_entries_were_observed(self, smoke_samples, rng):
        gt = sample_ground_truth(smoke_samples, 1.0, rng, n_mnars=20)
        assert gt is not None
        for row, dim, lbl in gt.entries:
            if lbl == 0:
                original_row = gt.sample_indices[row]
                # Was observed originally, nullified in the modified copy.
                assert smoke_samples.profiles[original_row, dim] == 1.0
                assert gt.modified_profiles[row, dim] == 0.0

    def test_mnar_entries_missing_in_patch(self, smoke_samples, rng):
        gt = sample_ground_truth(smoke_samples, 1.0, rng, n_mnars=20)
        assert gt is not None
        for row, dim, lbl in gt.entries:
            if lbl == -1:
                original_row = gt.sample_indices[row]
                assert smoke_samples.profiles[original_row, dim] == 0.0

    def test_invalid_gamma(self, smoke_samples, rng):
        with pytest.raises(Exception):
            sample_ground_truth(smoke_samples, 0.0, rng)


class TestDAEvaluation:
    def test_da_in_unit_interval(self, smoke_samples, rng):
        gt = sample_ground_truth(smoke_samples, 2.0, rng, n_mnars=20)
        assert gt is not None
        for k in (1, 3, 6):
            da = evaluate_da_for_k(smoke_samples, gt, k, 0.1, rng)
            assert 0.0 <= da <= 1.0

    def test_too_large_k_returns_zero(self, smoke_samples, rng):
        gt = sample_ground_truth(smoke_samples, 2.0, rng, n_mnars=20)
        assert gt is not None
        da = evaluate_da_for_k(
            smoke_samples, gt, 10_000, 0.1, rng
        )
        assert da == 0.0


class TestDifferentiator:
    def test_mask_valid_and_k_selected(self, kaide_smoke):
        dasa = DasaKMDifferentiator(
            upper_bound=6, proportions=(1, 4), n_mnars=20
        )
        mask = dasa.differentiate(kaide_smoke.radio_map)
        validate_mask(mask, kaide_smoke.radio_map)
        assert dasa.selected_k_ is not None
        assert 1 <= dasa.selected_k_ <= 6

    def test_deterministic_given_seed(self, kaide_smoke):
        a = DasaKMDifferentiator(
            upper_bound=4, proportions=(1,), n_mnars=15, seed=3
        ).differentiate(kaide_smoke.radio_map)
        b = DasaKMDifferentiator(
            upper_bound=4, proportions=(1,), n_mnars=15, seed=3
        ).differentiate(kaide_smoke.radio_map)
        np.testing.assert_array_equal(a, b)
