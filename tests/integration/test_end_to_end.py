"""Integration: the paper's full pipeline on realistic synthetic data."""

import numpy as np
import pytest

from repro.bisim import BiSIMConfig, BiSIMImputer
from repro.core import (
    MAROnlyDifferentiator,
    TopoACDifferentiator,
    validate_mask,
)
from repro.imputers import LinearInterpolationImputer, run_imputer
from repro.metrics import differentiation_accuracy
from repro.positioning import WKNNEstimator, evaluate_pipeline


class TestFullPipeline:
    def test_t_bisim_end_to_end(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        topo = TopoACDifferentiator(
            entities=kaide_smoke.venue.plan.entities
        )
        out = evaluate_pipeline(
            rm,
            topo,
            BiSIMImputer(
                config=BiSIMConfig(hidden_size=16, epochs=8)
            ),
            WKNNEstimator(),
            np.random.default_rng(0),
        )
        diagonal = np.hypot(
            kaide_smoke.venue.plan.width,
            kaide_smoke.venue.plan.height,
        )
        assert 0 < out.ape < diagonal

    def test_differentiator_beats_coin_flip_on_truth(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        mask = TopoACDifferentiator(
            entities=kaide_smoke.venue.plan.entities
        ).differentiate(rm)
        validate_mask(mask, rm)
        truth = rm.truth.missing_type
        sel = (truth != 1) & (mask != 1)
        da = differentiation_accuracy(truth[sel], mask[sel])
        assert da > 0.6  # clearly better than random (0.5)

    def test_imputed_map_improves_over_sparse_positioning(
        self, kaide_smoke
    ):
        # Sanity: the imputation pipeline produces a usable radio map;
        # APE must be small relative to the venue scale.
        rm = kaide_smoke.radio_map
        out = evaluate_pipeline(
            rm,
            MAROnlyDifferentiator(),
            LinearInterpolationImputer(),
            WKNNEstimator(),
            np.random.default_rng(3),
        )
        assert out.ape < 0.5 * np.hypot(
            kaide_smoke.venue.plan.width,
            kaide_smoke.venue.plan.height,
        )

    def test_bluetooth_pipeline(self, longhu_smoke):
        rm = longhu_smoke.radio_map
        out = evaluate_pipeline(
            rm,
            TopoACDifferentiator(
                entities=longhu_smoke.venue.plan.entities
            ),
            LinearInterpolationImputer(),
            WKNNEstimator(),
            np.random.default_rng(0),
        )
        assert np.isfinite(out.ape)

    def test_run_imputer_full_consistency(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        mask = MAROnlyDifferentiator().differentiate(rm)
        result = run_imputer(LinearInterpolationImputer(), rm, mask)
        assert result.fingerprints.shape == rm.fingerprints.shape
        # Every originally observed value survived the whole stage.
        obs = rm.rssi_observed_mask
        np.testing.assert_allclose(
            result.fingerprints[obs], rm.fingerprints[obs]
        )
