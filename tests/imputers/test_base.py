"""Imputer interface: MNAR fill and result validation."""

import numpy as np
import pytest

from repro.constants import MASK_MAR, MASK_MNAR, MASK_OBSERVED, MNAR_FILL
from repro.core import MNAROnlyDifferentiator, TopoACDifferentiator
from repro.exceptions import ImputationError
from repro.imputers import (
    ImputationResult,
    LinearInterpolationImputer,
    fill_mnars,
    run_imputer,
)


class TestFillMnars:
    def test_mnars_filled(self, tiny_radio_map):
        mask = MNAROnlyDifferentiator().differentiate(tiny_radio_map)
        filled, amended = fill_mnars(tiny_radio_map, mask)
        missing = ~tiny_radio_map.rssi_observed_mask
        assert (filled.fingerprints[missing] == MNAR_FILL).all()
        assert (amended[missing] == MASK_OBSERVED).all()

    def test_mars_left_null(self, tiny_radio_map):
        mask = MNAROnlyDifferentiator().differentiate(tiny_radio_map)
        mask[0, 3] = MASK_MAR
        filled, amended = fill_mnars(tiny_radio_map, mask)
        assert np.isnan(filled.fingerprints[0, 3])
        assert amended[0, 3] == MASK_MAR

    def test_observed_untouched(self, tiny_radio_map):
        mask = MNAROnlyDifferentiator().differentiate(tiny_radio_map)
        filled, _ = fill_mnars(tiny_radio_map, mask)
        obs = tiny_radio_map.rssi_observed_mask
        np.testing.assert_allclose(
            filled.fingerprints[obs], tiny_radio_map.fingerprints[obs]
        )

    def test_original_unmodified(self, tiny_radio_map):
        mask = MNAROnlyDifferentiator().differentiate(tiny_radio_map)
        fill_mnars(tiny_radio_map, mask)
        assert np.isnan(tiny_radio_map.fingerprints[0, 3])

    def test_shape_mismatch(self, tiny_radio_map):
        with pytest.raises(ImputationError):
            fill_mnars(tiny_radio_map, np.ones((2, 2), dtype=int))


class TestImputationResult:
    def test_row_count_checked(self):
        with pytest.raises(ImputationError):
            ImputationResult(
                fingerprints=np.zeros((3, 2)),
                rps=np.zeros((2, 2)),
                kept_indices=np.arange(3),
            )

    def test_validate_complete_rejects_nan(self):
        result = ImputationResult(
            fingerprints=np.array([[np.nan]]),
            rps=np.zeros((1, 2)),
            kept_indices=np.arange(1),
        )
        with pytest.raises(ImputationError):
            result.validate_complete()


class TestRunImputer:
    def test_times_and_validates(self, tiny_radio_map):
        mask = MNAROnlyDifferentiator().differentiate(tiny_radio_map)
        result = run_imputer(
            LinearInterpolationImputer(), tiny_radio_map, mask
        )
        assert result.elapsed_seconds >= 0
        assert np.isfinite(result.fingerprints).all()
        assert np.isfinite(result.rps).all()
