"""BRITS and SSGAN on a real (smoke-scale) radio map."""

import numpy as np
import pytest

from repro.constants import RSSI_MAX, RSSI_MIN
from repro.core import TopoACDifferentiator
from repro.imputers import BRITSImputer, SSGANImputer, fill_mnars, run_imputer


@pytest.fixture(scope="module")
def masked(kaide_smoke):
    rm = kaide_smoke.radio_map
    mask = TopoACDifferentiator(
        entities=kaide_smoke.venue.plan.entities
    ).differentiate(rm)
    return rm, mask


class TestBRITS:
    def test_complete_and_preserving(self, masked):
        rm, mask = masked
        imputer = BRITSImputer(hidden_size=12, epochs=5)
        result = run_imputer(imputer, rm, mask)
        assert np.isfinite(result.fingerprints).all()
        assert np.isfinite(result.rps).all()
        obs = rm.rssi_observed_mask
        np.testing.assert_allclose(
            result.fingerprints[obs], rm.fingerprints[obs]
        )

    def test_training_loss_decreases(self, masked):
        rm, mask = masked
        imputer = BRITSImputer(hidden_size=12, epochs=10)
        run_imputer(imputer, rm, mask)
        assert imputer.last_losses_[-1] < imputer.last_losses_[0]

    def test_mar_imputations_in_range(self, masked):
        rm, mask = masked
        imputer = BRITSImputer(hidden_size=12, epochs=5)
        result = run_imputer(imputer, rm, mask)
        mar = mask == 0
        assert (result.fingerprints[mar] >= RSSI_MIN).all()
        assert (result.fingerprints[mar] <= RSSI_MAX).all()

    def test_rps_use_linear_interpolation(self, masked):
        rm, mask = masked
        from repro.radiomap import interpolate_rps_linear

        filled, amended = fill_mnars(rm, mask)
        result = BRITSImputer(hidden_size=12, epochs=2).impute(
            filled, amended
        )
        np.testing.assert_allclose(
            result.rps, interpolate_rps_linear(filled)
        )


class TestSSGAN:
    def test_complete_and_preserving(self, masked):
        rm, mask = masked
        imputer = SSGANImputer(hidden_size=12, epochs=5)
        result = run_imputer(imputer, rm, mask)
        assert np.isfinite(result.fingerprints).all()
        assert np.isfinite(result.rps).all()
        obs = rm.rssi_observed_mask
        np.testing.assert_allclose(
            result.fingerprints[obs], rm.fingerprints[obs]
        )

    def test_generator_loss_recorded(self, masked):
        rm, mask = masked
        imputer = SSGANImputer(hidden_size=12, epochs=4)
        run_imputer(imputer, rm, mask)
        assert len(imputer.last_g_losses_) == 4
        assert all(np.isfinite(v) for v in imputer.last_g_losses_)

    def test_mar_imputations_in_range(self, masked):
        rm, mask = masked
        imputer = SSGANImputer(hidden_size=12, epochs=4)
        result = run_imputer(imputer, rm, mask)
        mar = mask == 0
        assert (result.fingerprints[mar] >= RSSI_MIN).all()
        assert (result.fingerprints[mar] <= RSSI_MAX).all()
