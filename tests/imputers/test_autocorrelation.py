"""MICE and MF: recovery of structured missing data."""

import numpy as np
import pytest

from repro.imputers import MatrixFactorizationImputer, MICEImputer
from repro.radiomap import RadioMap


def _structured_map(n=40, seed=0):
    """Radio map whose columns are linearly related (MICE-friendly)
    and low-rank (MF-friendly)."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(-90, -40, size=(n, 2))
    # 4 AP columns as linear combinations of 2 factors + tiny noise.
    weights = rng.uniform(0.3, 1.0, size=(2, 4))
    fingerprints = base @ weights + rng.normal(0, 0.1, size=(n, 4))
    rps = base * 0.1 + 10
    return RadioMap(
        fingerprints=fingerprints,
        rps=rps,
        times=np.arange(n, dtype=float),
        path_ids=np.zeros(n, dtype=int),
    )


def _hide(rm, frac, seed=1):
    rng = np.random.default_rng(seed)
    out = rm.copy()
    rows, cols = np.where(np.isfinite(out.fingerprints))
    k = int(frac * rows.size)
    pick = rng.choice(rows.size, size=k, replace=False)
    held = [(rows[i], cols[i], out.fingerprints[rows[i], cols[i]]) for i in pick]
    out.fingerprints[rows[pick], cols[pick]] = np.nan
    return out, held


class TestMICE:
    def test_recovers_linear_structure(self):
        rm = _structured_map()
        hidden, held = _hide(rm, 0.2)
        mask = np.ones(rm.fingerprints.shape, dtype=int)
        result = MICEImputer(n_rounds=4).impute(hidden, mask)
        errors = [
            abs(result.fingerprints[r, c] - v) for r, c, v in held
        ]
        assert np.mean(errors) < 3.0  # far better than mean fill (~10+)

    def test_complete_output(self):
        rm = _structured_map()
        hidden, _ = _hide(rm, 0.4)
        hidden.rps[3] = np.nan
        result = MICEImputer().impute(
            hidden, np.ones(rm.fingerprints.shape, dtype=int)
        )
        assert np.isfinite(result.fingerprints).all()
        assert np.isfinite(result.rps).all()

    def test_observed_values_untouched(self):
        rm = _structured_map()
        hidden, _ = _hide(rm, 0.2)
        result = MICEImputer().impute(
            hidden, np.ones(rm.fingerprints.shape, dtype=int)
        )
        obs = np.isfinite(hidden.fingerprints)
        np.testing.assert_allclose(
            result.fingerprints[obs], hidden.fingerprints[obs]
        )


class TestMF:
    def test_recovers_low_rank(self):
        rm = _structured_map()
        hidden, held = _hide(rm, 0.2)
        mask = np.ones(rm.fingerprints.shape, dtype=int)
        result = MatrixFactorizationImputer(
            rank=3, n_iterations=30
        ).impute(hidden, mask)
        errors = [
            abs(result.fingerprints[r, c] - v) for r, c, v in held
        ]
        assert np.mean(errors) < 4.0

    def test_observed_values_untouched(self):
        rm = _structured_map()
        hidden, _ = _hide(rm, 0.3)
        result = MatrixFactorizationImputer(n_iterations=5).impute(
            hidden, np.ones(rm.fingerprints.shape, dtype=int)
        )
        obs = np.isfinite(hidden.fingerprints)
        np.testing.assert_allclose(
            result.fingerprints[obs], hidden.fingerprints[obs]
        )

    def test_handles_empty_rows(self):
        rm = _structured_map(n=10)
        hidden = rm.copy()
        hidden.fingerprints[0] = np.nan  # a fully-missing row
        result = MatrixFactorizationImputer(n_iterations=5).impute(
            hidden, np.ones(rm.fingerprints.shape, dtype=int)
        )
        assert np.isfinite(result.fingerprints).all()
