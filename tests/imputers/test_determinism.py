"""Determinism of every imputer given fixed seeds.

Reproducibility is a first-class requirement for a reproduction repo:
identical inputs + identical seeds must give bit-identical imputations.
"""

import numpy as np
import pytest

from repro.bisim import BiSIMConfig, BiSIMImputer
from repro.core import TopoACDifferentiator
from repro.imputers import (
    BRITSImputer,
    LinearInterpolationImputer,
    MatrixFactorizationImputer,
    MICEImputer,
    SemiSupervisedImputer,
    SSGANImputer,
    fill_mnars,
)


@pytest.fixture(scope="module")
def prepared(kaide_smoke):
    rm = kaide_smoke.radio_map
    mask = TopoACDifferentiator(
        entities=kaide_smoke.venue.plan.entities
    ).differentiate(rm)
    return fill_mnars(rm, mask)


def _run_twice(make_imputer, prepared):
    filled, amended = prepared
    a = make_imputer().impute(filled, amended)
    b = make_imputer().impute(filled, amended)
    np.testing.assert_array_equal(a.fingerprints, b.fingerprints)
    np.testing.assert_array_equal(a.rps, b.rps)


class TestDeterminism:
    def test_li(self, prepared):
        _run_twice(LinearInterpolationImputer, prepared)

    def test_sl(self, prepared):
        _run_twice(SemiSupervisedImputer, prepared)

    def test_mice(self, prepared):
        _run_twice(MICEImputer, prepared)

    def test_mf(self, prepared):
        _run_twice(
            lambda: MatrixFactorizationImputer(n_iterations=5, seed=3),
            prepared,
        )

    def test_brits(self, prepared):
        _run_twice(
            lambda: BRITSImputer(hidden_size=10, epochs=2, seed=4),
            prepared,
        )

    def test_ssgan(self, prepared):
        _run_twice(
            lambda: SSGANImputer(hidden_size=10, epochs=2, seed=4),
            prepared,
        )

    def test_bisim(self, prepared):
        _run_twice(
            lambda: BiSIMImputer(
                config=BiSIMConfig(hidden_size=10, epochs=2, seed=4)
            ),
            prepared,
        )
