"""Traditional imputers: CD, LI, SL."""

import numpy as np
import pytest

from repro.constants import MNAR_FILL
from repro.core import MNAROnlyDifferentiator
from repro.exceptions import ImputationError
from repro.imputers import (
    CaseDeletionImputer,
    LinearInterpolationImputer,
    SemiSupervisedImputer,
    fill_mnars,
)
from repro.radiomap import RadioMap


@pytest.fixture
def filled_map(tiny_radio_map):
    mask = MNAROnlyDifferentiator().differentiate(tiny_radio_map)
    # Make positions 0,3 and 1,1 MARs so traditional -100 fill applies.
    mask[0, 3] = 0
    mask[1, 1] = 0
    return fill_mnars(tiny_radio_map, mask)


class TestCaseDeletion:
    def test_drops_null_rp_records(self, filled_map):
        filled, amended = filled_map
        result = CaseDeletionImputer().impute(filled, amended)
        np.testing.assert_array_equal(result.kept_indices, [0, 2, 4])
        assert result.fingerprints.shape[0] == 3

    def test_fills_remaining_with_mnar_value(self, filled_map):
        filled, amended = filled_map
        result = CaseDeletionImputer().impute(filled, amended)
        assert (result.fingerprints[np.isnan(filled.fingerprints[[0, 2, 4]])] == MNAR_FILL).all()

    def test_raises_when_no_rps(self):
        rm = RadioMap(
            fingerprints=np.zeros((2, 2)),
            rps=np.full((2, 2), np.nan),
            times=np.arange(2, dtype=float),
            path_ids=np.zeros(2, dtype=int),
        )
        with pytest.raises(ImputationError):
            CaseDeletionImputer().impute(rm, np.ones((2, 2), dtype=int))


class TestLinearInterpolation:
    def test_keeps_all_records(self, filled_map):
        filled, amended = filled_map
        result = LinearInterpolationImputer().impute(filled, amended)
        assert result.fingerprints.shape[0] == 5
        assert np.isfinite(result.rps).all()

    def test_interpolated_rp_matches_paper_example(self, filled_map):
        filled, amended = filled_map
        result = LinearInterpolationImputer().impute(filled, amended)
        # Record 4 at t=12 between (5,5)@t=8 and (8,8)@t=16 -> (6.5, 6.5)
        np.testing.assert_allclose(result.rps[3], [6.5, 6.5])


class TestSemiSupervised:
    def test_propagates_all_labels(self, filled_map):
        filled, amended = filled_map
        result = SemiSupervisedImputer().impute(filled, amended)
        assert np.isfinite(result.rps).all()

    def test_observed_rps_unchanged(self, filled_map):
        filled, amended = filled_map
        result = SemiSupervisedImputer().impute(filled, amended)
        obs = filled.rp_observed_mask
        np.testing.assert_allclose(
            result.rps[obs], filled.rps[obs]
        )

    def test_propagated_rp_in_convex_hull_of_labels(self, filled_map):
        filled, amended = filled_map
        result = SemiSupervisedImputer().impute(filled, amended)
        obs_rps = filled.rps[filled.rp_observed_mask]
        lo, hi = obs_rps.min(axis=0), obs_rps.max(axis=0)
        for i in np.where(~filled.rp_observed_mask)[0]:
            assert (result.rps[i] >= lo - 1e-9).all()
            assert (result.rps[i] <= hi + 1e-9).all()

    def test_needs_at_least_one_label(self):
        rm = RadioMap(
            fingerprints=np.zeros((2, 2)),
            rps=np.full((2, 2), np.nan),
            times=np.arange(2, dtype=float),
            path_ids=np.zeros(2, dtype=int),
        )
        with pytest.raises(ImputationError):
            SemiSupervisedImputer().impute(
                rm, np.ones((2, 2), dtype=int)
            )
