"""StreamIngestor sessions: chaining, stats, survey simulation."""

import numpy as np
import pytest

from repro.exceptions import IngestError
from repro.ingest import (
    StreamIngestor,
    load_delta,
    simulate_new_survey,
    verify_chain,
)
from repro.radiomap import apply_radio_map_delta
from repro.survey import RSSIRecord


def feed(ingestor, path_id, n, seed=0, t0=0.0):
    rng = np.random.default_rng(seed)
    t = t0
    records = []
    for _ in range(n):
        t += float(rng.uniform(1.5, 3.0))
        records.append(
            RSSIRecord(
                time=t,
                readings={0: float(rng.uniform(-90, -50))},
            )
        )
    ingestor.ingest(path_id, records)


class TestStreamIngestor:
    def test_publish_chains_sequences(self, tmp_path):
        ingestor = StreamIngestor(2, parent_hash="c" * 64)
        feed(ingestor, 0, 4, seed=1)
        p0 = ingestor.publish(tmp_path / "d0.npz")
        feed(ingestor, 1, 4, seed=2)
        p1 = ingestor.publish(tmp_path / "d1.npz")
        assert (p0.sequence, p1.sequence) == (0, 1)
        assert p0.parent_hash == "c" * 64
        assert p1.parent_hash == p0.content_hash
        assert ingestor.parent_hash == p1.content_hash
        # Loaded deltas honour the recorded lineage.
        load_delta(tmp_path / "d0.npz", parent_hash="c" * 64)
        load_delta(tmp_path / "d1.npz", parent_hash=p0.content_hash)

    def test_resumed_session_continues_chain(self, tmp_path):
        """A new ingestor chaining on a previous delta resumes the
        sequence numbering, keeping verify_chain's monotonicity."""
        first = StreamIngestor(2)
        feed(first, 0, 3, seed=1)
        p0 = first.publish(tmp_path / "d0.npz")
        resumed = StreamIngestor(
            2, parent_hash=p0.content_hash, sequence=p0.sequence + 1
        )
        feed(resumed, 1, 3, seed=2)
        p1 = resumed.publish(tmp_path / "d1.npz")
        assert p1.sequence == 1
        assert (
            verify_chain(tmp_path / "d0.npz", [tmp_path / "d1.npz"])
            != []
        )

    def test_negative_sequence_rejected(self):
        with pytest.raises(IngestError):
            StreamIngestor(2, sequence=-1)

    def test_failed_save_does_not_lose_the_delta(self, tmp_path):
        """A failed write re-marks the drained paths; the retry ships
        the same rows instead of raising 'nothing to publish'."""
        ingestor = StreamIngestor(2)
        feed(ingestor, 0, 4, seed=1)
        with pytest.raises(Exception):
            ingestor.publish(tmp_path)  # directory target: save fails
        assert ingestor.sequence == 0  # no chain link consumed
        published = ingestor.publish(tmp_path / "d0.npz")
        assert published.sequence == 0
        assert published.delta.n_rows > 0
        assert 0 in published.delta.path_ids

    def test_empty_publish_rejected(self, tmp_path):
        ingestor = StreamIngestor(2)
        with pytest.raises(IngestError, match="nothing to publish"):
            ingestor.publish(tmp_path / "d.npz")
        feed(ingestor, 0, 2)
        ingestor.publish(tmp_path / "d.npz")
        with pytest.raises(IngestError):
            ingestor.publish(tmp_path / "d2.npz")

    def test_stats_track_session(self, tmp_path):
        ingestor = StreamIngestor(2)
        feed(ingestor, 0, 3, seed=1)
        feed(ingestor, 1, 2, seed=2)
        ingestor.publish(tmp_path / "d.npz")
        stats = ingestor.stats
        assert stats.records_in == 5
        assert stats.paths_touched == 2
        assert stats.deltas_published == 1
        assert stats.rows_shipped > 0
        assert "ingested=5" in stats.render()

    def test_drain_without_publish(self):
        ingestor = StreamIngestor(2)
        assert ingestor.drain() is None
        feed(ingestor, 0, 2)
        delta = ingestor.drain()
        assert delta is not None
        assert ingestor.sequence == 0  # drain does not consume a link


class TestSimulateNewSurvey:
    def test_paths_renumber_after_existing(self, kaide_smoke):
        tables = simulate_new_survey(kaide_smoke, n_passes=1, seed=3)
        assert tables
        existing_max = int(kaide_smoke.radio_map.path_ids.max())
        ids = [t.path_id for t in tables]
        assert min(ids) == existing_max + 1
        assert len(set(ids)) == len(ids)
        for t in tables:
            assert t.n_aps == kaide_smoke.radio_map.n_aps

    def test_start_path_id_override(self, kaide_smoke):
        """Successive drops must not reuse ids (replace-on-apply)."""
        first = simulate_new_survey(kaide_smoke, n_passes=1, seed=3)
        nxt = max(t.path_id for t in first) + 1
        second = simulate_new_survey(
            kaide_smoke, n_passes=1, seed=4, start_path_id=nxt
        )
        assert min(t.path_id for t in second) == nxt
        assert not {t.path_id for t in first} & {
            t.path_id for t in second
        }

    def test_deterministic_in_seed(self, kaide_smoke):
        a = simulate_new_survey(kaide_smoke, n_passes=1, seed=5)
        b = simulate_new_survey(kaide_smoke, n_passes=1, seed=5)
        assert [len(t) for t in a] == [len(t) for t in b]
        c = simulate_new_survey(kaide_smoke, n_passes=1, seed=6)
        assert [len(t) for t in a] != [len(t) for t in c] or [
            r.time for r in a[0].records
        ] != [r.time for r in c[0].records]

    def test_end_to_end_grows_map(self, kaide_smoke, tmp_path):
        ingestor = StreamIngestor(kaide_smoke.radio_map.n_aps)
        for table in simulate_new_survey(
            kaide_smoke, n_passes=1, seed=9
        ):
            ingestor.ingest_table(table)
        published = ingestor.publish(tmp_path / "drop.npz")
        delta, _ = load_delta(published.path)
        merged = apply_radio_map_delta(kaide_smoke.radio_map, delta)
        assert merged.n_records > kaide_smoke.radio_map.n_records
        assert merged.n_aps == kaide_smoke.radio_map.n_aps
        # The chain verifies from the first published link.
        assert verify_chain(published.path, []) == []
