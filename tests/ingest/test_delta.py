"""Delta artifacts: round trips, lineage chains, typed failures."""

import numpy as np
import pytest

from repro.artifacts import Artifact, read_manifest, save_artifact
from repro.exceptions import ArtifactError
from repro.ingest import (
    DELTA_KIND,
    delta_to_artifact,
    load_delta,
    save_delta,
    verify_chain,
)
from repro.radiomap import RadioMapBuilder
from repro.survey import RecordTruth, RSSIRecord


def make_delta(seed=0, path_id=0, n=5, d=4, truth=False):
    rng = np.random.default_rng(seed)
    builder = RadioMapBuilder(d)
    t = 0.0
    for _ in range(n):
        t += float(rng.uniform(1.5, 3.0))
        readings = {
            int(a): float(rng.uniform(-95, -40))
            for a in rng.choice(d, size=2, replace=False)
        }
        record_truth = (
            RecordTruth(
                position=(float(t), 0.0),
                missing_type=rng.integers(-1, 2, size=d),
            )
            if truth
            else None
        )
        builder.add_record(
            path_id,
            RSSIRecord(time=t, readings=readings, truth=record_truth),
        )
    return builder.drain_delta()


class TestDeltaArtifact:
    def test_round_trip(self, tmp_path):
        delta = make_delta()
        path = tmp_path / "d.npz"
        digest = save_delta(delta, path, sequence=3)
        loaded, config = load_delta(path)
        assert config["sequence"] == 3
        assert config["parent_hash"] is None
        np.testing.assert_array_equal(
            loaded.path_ids, delta.path_ids
        )
        np.testing.assert_array_equal(
            loaded.records.fingerprints, delta.records.fingerprints
        )
        np.testing.assert_array_equal(
            loaded.records.times, delta.records.times
        )
        assert digest == read_manifest(path)["content_hash"]

    def test_truth_survives_round_trip(self, tmp_path):
        delta = make_delta(truth=True)
        path = tmp_path / "d.npz"
        save_delta(delta, path)
        loaded, _ = load_delta(path)
        assert loaded.records.truth is not None
        np.testing.assert_array_equal(
            loaded.records.truth.missing_type,
            delta.records.truth.missing_type,
        )

    def test_kind_tagged(self):
        artifact = delta_to_artifact(make_delta())
        assert artifact.kind == DELTA_KIND
        assert artifact.metrics["rows"] == make_delta().n_rows

    def test_parent_hash_pinning(self, tmp_path):
        delta = make_delta()
        path = tmp_path / "d.npz"
        save_delta(delta, path, parent_hash="a" * 64)
        loaded, config = load_delta(path, parent_hash="a" * 64)
        assert config["parent_hash"] == "a" * 64
        with pytest.raises(ArtifactError, match="lineage"):
            load_delta(path, parent_hash="b" * 64)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "x.npz"
        save_artifact(
            Artifact(kind="other", arrays={"a": np.zeros(2)}), path
        )
        with pytest.raises(ArtifactError, match="kind"):
            load_delta(path)


class TestChain:
    def make_chain(self, tmp_path, n=3):
        base = tmp_path / "base.npz"
        save_artifact(
            Artifact(kind="serving.shard", arrays={"a": np.ones(3)}),
            base,
        )
        parent = str(read_manifest(base)["content_hash"])
        paths = []
        for i in range(n):
            path = tmp_path / f"d{i}.npz"
            parent = save_delta(
                make_delta(seed=i, path_id=10 + i),
                path,
                parent_hash=parent,
                sequence=i,
            )
            paths.append(path)
        return base, paths

    def test_valid_chain_verifies(self, tmp_path):
        base, paths = self.make_chain(tmp_path)
        configs = verify_chain(base, paths)
        assert [c["sequence"] for c in configs] == [0, 1, 2]

    def test_reordered_chain_rejected(self, tmp_path):
        base, paths = self.make_chain(tmp_path)
        with pytest.raises(ArtifactError, match="chain breaks"):
            verify_chain(base, [paths[1], paths[0], paths[2]])

    def test_missing_link_rejected(self, tmp_path):
        base, paths = self.make_chain(tmp_path)
        with pytest.raises(ArtifactError, match="chain breaks"):
            verify_chain(base, [paths[0], paths[2]])

    def test_wrong_base_rejected(self, tmp_path):
        base, paths = self.make_chain(tmp_path)
        other = tmp_path / "other-base.npz"
        save_artifact(
            Artifact(kind="serving.shard", arrays={"a": np.zeros(3)}),
            other,
        )
        with pytest.raises(ArtifactError, match="chain breaks"):
            verify_chain(other, paths)

    def test_non_delta_link_rejected(self, tmp_path):
        base, paths = self.make_chain(tmp_path)
        with pytest.raises(ArtifactError, match="not a radio-map delta"):
            verify_chain(base, [base])


class TestReadManifest:
    def test_reads_without_loading_arrays(self, tmp_path):
        path = tmp_path / "a.npz"
        save_artifact(
            Artifact(
                kind="x.y",
                arrays={"big": np.zeros((10, 10))},
                config={"k": 1},
            ),
            path,
        )
        manifest = read_manifest(path)
        assert manifest["kind"] == "x.y"
        assert manifest["config"] == {"k": 1}
        assert "content_hash" in manifest

    def test_missing_file_typed(self, tmp_path):
        with pytest.raises(ArtifactError, match="no such artifact"):
            read_manifest(tmp_path / "nope.npz")

    def test_non_artifact_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, a=np.zeros(2))
        with pytest.raises(ArtifactError, match="no manifest"):
            read_manifest(path)
