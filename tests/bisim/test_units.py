"""Encoder/decoder units and temporal decay."""

import numpy as np
import pytest

from repro.bisim import DecoderUnit, EncoderUnit, TemporalDecay
from repro.exceptions import ImputationError
from repro.neuro import Tensor

RNG = np.random.default_rng(11)


class TestTemporalDecay:
    def test_decay_in_unit_interval(self):
        decay = TemporalDecay(4, 8, "scalar", RNG)
        lag = Tensor(np.abs(RNG.normal(size=(5, 4))))
        gamma = decay(lag)
        assert gamma.shape == (5, 1)
        assert (gamma.data > 0).all() and (gamma.data <= 1).all()

    def test_vector_mode_shape(self):
        decay = TemporalDecay(4, 8, "vector", RNG)
        gamma = decay(Tensor(np.ones((3, 4))))
        assert gamma.shape == (3, 8)

    def test_zero_lag_gives_unit_decay_after_relu(self):
        decay = TemporalDecay(2, 4, "scalar", RNG)
        # With zero lag the pre-activation is the bias; relu(max(0, b))
        # could be positive, so force bias negative to check the path.
        decay.linear.bias.data = np.array([-1.0])
        gamma = decay(Tensor(np.zeros((1, 2))))
        assert gamma.data[0, 0] == pytest.approx(1.0)

    def test_invalid_mode(self):
        with pytest.raises(ImputationError):
            TemporalDecay(2, 4, "nope", RNG)


class TestEncoderUnit:
    def _unit(self, **kw):
        return EncoderUnit(6, 8, RNG, **kw)

    def test_shapes(self):
        unit = self._unit()
        state = unit.initial_state(3)
        f = Tensor(RNG.random((3, 6)))
        m = Tensor(np.ones((3, 6)))
        lag = Tensor(np.zeros((3, 6)))
        f_prime, fc, (h, c) = unit.step(f, m, lag, state)
        assert f_prime.shape == (3, 6)
        assert fc.shape == (3, 6)
        assert h.shape == (3, 8)
        assert c.shape == (3, 8)

    def test_observed_values_pass_through(self):
        unit = self._unit()
        state = unit.initial_state(2)
        f = Tensor(RNG.random((2, 6)))
        m = Tensor(np.ones((2, 6)))
        _, fc, _ = unit.step(f, m, Tensor(np.zeros((2, 6))), state)
        np.testing.assert_allclose(fc.data, f.data)

    def test_missing_values_estimated(self):
        unit = self._unit()
        state = unit.initial_state(1)
        f = Tensor(np.zeros((1, 6)))
        m = Tensor(np.zeros((1, 6)))
        f_prime, fc, _ = unit.step(
            f, m, Tensor(np.zeros((1, 6))), state
        )
        np.testing.assert_allclose(fc.data, f_prime.data)

    def test_no_time_lag_option(self):
        unit = self._unit(use_time_lag=False)
        assert unit.decay is None
        state = unit.initial_state(1)
        out = unit.step(
            Tensor(np.zeros((1, 6))),
            Tensor(np.ones((1, 6))),
            Tensor(np.zeros((1, 6))),
            state,
        )
        assert out[1].shape == (1, 6)


class TestDecoderUnit:
    def test_shapes_with_context(self):
        unit = DecoderUnit(8, 6, RNG)
        h = Tensor(np.zeros((2, 8)))
        state = (h, h)
        l = Tensor(RNG.random((2, 2)))
        k = Tensor(np.ones((2, 2)))
        ctx = Tensor(RNG.random((2, 6)))
        l_prime, lc, (s, c) = unit.step(l, k, ctx, None, state)
        assert l_prime.shape == (2, 2)
        assert lc.shape == (2, 2)
        assert s.shape == (2, 8)

    def test_shapes_without_context(self):
        unit = DecoderUnit(8, 0, RNG)
        h = Tensor(np.zeros((2, 8)))
        l = Tensor(RNG.random((2, 2)))
        k = Tensor(np.zeros((2, 2)))
        l_prime, lc, _ = unit.step(l, k, None, None, (h, h))
        np.testing.assert_allclose(lc.data, l_prime.data)

    def test_observed_rp_passes_through(self):
        unit = DecoderUnit(8, 0, RNG)
        h = Tensor(np.zeros((1, 8)))
        l = Tensor(np.array([[0.3, 0.7]]))
        k = Tensor(np.ones((1, 2)))
        _, lc, _ = unit.step(l, k, None, None, (h, h))
        np.testing.assert_allclose(lc.data, [[0.3, 0.7]])
