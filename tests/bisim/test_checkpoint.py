"""BiSIM checkpointing: config/trainer/online round trips + cache."""

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.bisim import (
    BiSIMConfig,
    BiSIMImputer,
    BiSIMTrainer,
    BiSIMTrainerCache,
    OnlineImputer,
    load_trainer,
)
from repro.exceptions import ArtifactError, ImputationError
from repro.imputers import fill_mnars
from repro.radiomap import RadioMap


def small_config(**kw):
    defaults = dict(hidden_size=8, epochs=3, batch_size=4, seed=3)
    defaults.update(kw)
    return BiSIMConfig(**defaults)


@pytest.fixture
def toy_map():
    """Two survey paths, 20 records, 6 APs, mixed missingness."""
    rng = np.random.default_rng(0)
    n, d = 20, 6
    fp = rng.uniform(-95, -40, size=(n, d))
    fp[rng.random((n, d)) < 0.5] = np.nan
    rps = rng.uniform(0, 10, size=(n, 2))
    rps[rng.random(n) < 0.4] = np.nan
    times = np.concatenate(
        [np.sort(rng.uniform(0, 30, 10)), np.sort(rng.uniform(0, 30, 10))]
    )
    radio_map = RadioMap(fp, rps, times, np.repeat([0, 1], 10))
    mask = np.where(
        np.isfinite(fp), 1, np.where(rng.random((n, d)) < 0.5, 0, -1)
    )
    return fill_mnars(radio_map, mask)


class TestConfigSerialisation:
    def test_round_trip(self):
        cfg = small_config(attention="vanilla", decay_mode="vector")
        back = BiSIMConfig.from_dict(cfg.to_dict())
        assert back == cfg

    def test_unknown_field_rejected(self):
        data = small_config().to_dict()
        data["dropout"] = 0.5
        with pytest.raises(ImputationError, match="unknown"):
            BiSIMConfig.from_dict(data)

    def test_missing_field_rejected(self):
        """No silent half-apply with defaults for older checkpoints."""
        data = small_config().to_dict()
        del data["hidden_size"]
        with pytest.raises(ImputationError, match="missing"):
            BiSIMConfig.from_dict(data)

    def test_invalid_values_still_validated(self):
        data = small_config().to_dict()
        data["attention"] = "transformer"
        with pytest.raises(ImputationError):
            BiSIMConfig.from_dict(data)


class TestHistory:
    def test_epoch_seconds_and_best_epoch(self, toy_map):
        filled, amended = toy_map
        trainer = BiSIMTrainer(filled.n_aps, small_config())
        history = trainer.fit(filled, amended)
        assert history.n_epochs == 3
        assert len(history.epoch_seconds) == 3
        assert all(s > 0 for s in history.epoch_seconds)
        assert history.best_epoch == int(np.argmin(history.losses))
        assert history.best_loss == min(history.losses)
        assert history.total_seconds == pytest.approx(
            sum(history.epoch_seconds)
        )

    def test_unfitted_history_raises(self):
        trainer = BiSIMTrainer(4, small_config())
        with pytest.raises(ImputationError):
            trainer.history.best_epoch

    def test_best_weights_restored(self, toy_map):
        """After fit, the model serves the best epoch's weights."""
        filled, amended = toy_map
        cfg = small_config(epochs=4)
        trainer = BiSIMTrainer(filled.n_aps, cfg)
        trainer.fit(filled, amended)
        # Retrain without keep_best and manually replay: both must
        # agree when the best epoch happens to be the last, and the
        # checkpointed state must be a valid state dict regardless.
        state = trainer.model.state_dict()
        fresh = BiSIMTrainer(filled.n_aps, cfg)
        fresh.fit(filled, amended, keep_best=False)
        fresh.model.load_state_dict(state)  # shapes compatible


class TestTrainerCheckpoint:
    def test_round_trip_bit_identical(self, toy_map, tmp_path):
        filled, amended = toy_map
        trainer = BiSIMTrainer(filled.n_aps, small_config())
        trainer.fit(filled, amended)
        f1, r1 = trainer.impute(filled, amended)
        path = tmp_path / "trainer.npz"
        trainer.save(path)
        loaded = BiSIMTrainer.load(path)
        assert loaded.config == trainer.config
        assert loaded.history.losses == trainer.history.losses
        np.testing.assert_array_equal(
            loaded.space.rp_min, trainer.space.rp_min
        )
        f2, r2 = loaded.impute(filled, amended)
        np.testing.assert_array_equal(f1, f2)
        np.testing.assert_array_equal(r1, r2)

    def test_unfitted_save_rejected(self, tmp_path):
        trainer = BiSIMTrainer(4, small_config())
        with pytest.raises(ImputationError, match="unfitted"):
            trainer.save(tmp_path / "t.npz")

    def test_wrong_kind_rejected(self, toy_map, tmp_path):
        filled, amended = toy_map
        trainer = BiSIMTrainer(filled.n_aps, small_config())
        trainer.fit(filled, amended)
        imputer = OnlineImputer(trainer)
        imputer.index(filled, amended)
        path = tmp_path / "online.npz"
        imputer.save(path)
        with pytest.raises(ArtifactError, match="kind mismatch"):
            load_trainer(path)


class TestOnlineCheckpoint:
    def test_round_trip_bit_identical(self, toy_map, tmp_path):
        filled, amended = toy_map
        trainer = BiSIMTrainer(filled.n_aps, small_config())
        trainer.fit(filled, amended)
        imputer = OnlineImputer(trainer)
        imputer.index(filled, amended)
        queries = filled.fingerprints[:5].copy()
        queries[:, :2] = np.nan
        out1 = imputer.impute_batch(queries)

        path = tmp_path / "online.npz"
        imputer.save(path)
        loaded = OnlineImputer.load(path)
        out2 = loaded.impute_batch(queries)
        np.testing.assert_array_equal(out1, out2)
        # The reference per-query path agrees too.
        np.testing.assert_allclose(
            loaded.impute_fingerprint(queries[0]),
            imputer.impute_fingerprint(queries[0]),
            atol=0,
        )

    def test_chunk_path_metadata_round_trips(self, toy_map, tmp_path):
        """Chunk→path ids persist, keeping incremental refresh alive."""
        filled, amended = toy_map
        trainer = BiSIMTrainer(filled.n_aps, small_config())
        trainer.fit(filled, amended)
        imputer = OnlineImputer(trainer)
        imputer.index(filled, amended)
        path = tmp_path / "online.npz"
        imputer.save(path)
        loaded = OnlineImputer.load(path)
        np.testing.assert_array_equal(
            loaded.chunk_paths, imputer.chunk_paths
        )

    def test_legacy_artifact_without_paths_loads(
        self, toy_map, tmp_path
    ):
        """Artifacts from before chunk→path metadata still load; the
        restored index just reports no path metadata."""
        filled, amended = toy_map
        trainer = BiSIMTrainer(filled.n_aps, small_config())
        trainer.fit(filled, amended)
        imputer = OnlineImputer(trainer)
        imputer.index(filled, amended)
        imputer._chunk_paths = None  # simulate a legacy index
        path = tmp_path / "legacy.npz"
        imputer.save(path)
        loaded = OnlineImputer.load(path)
        assert loaded.chunk_paths is None
        queries = filled.fingerprints[:3].copy()
        queries[:, :2] = np.nan
        np.testing.assert_array_equal(
            loaded.impute_batch(queries), imputer.impute_batch(queries)
        )


class TestTrainerCache:
    def test_memory_hit_returns_same_object(self, toy_map):
        filled, amended = toy_map
        cache = BiSIMTrainerCache()
        cfg = small_config()
        first = cache.get_or_train(filled, amended, cfg)
        second = cache.get_or_train(filled, amended, cfg)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_config_changes_key(self, toy_map):
        filled, amended = toy_map
        cache = BiSIMTrainerCache()
        key_a = cache.key_for(filled, amended, small_config())
        key_b = cache.key_for(filled, amended, small_config(epochs=5))
        assert key_a != key_b

    def test_mask_changes_key(self, toy_map):
        filled, amended = toy_map
        cache = BiSIMTrainerCache()
        other = amended.copy()
        other[0, 0] = 1 - other[0, 0]
        assert cache.key_for(
            filled, amended, small_config()
        ) != cache.key_for(filled, other, small_config())

    def test_disk_store_warm_starts_new_cache(self, toy_map, tmp_path):
        filled, amended = toy_map
        store = ArtifactStore(tmp_path / "cache")
        cfg = small_config()
        first_cache = BiSIMTrainerCache(store=store)
        trained = first_cache.get_or_train(filled, amended, cfg)
        f1, r1 = trained.impute(filled, amended)

        # Fresh cache, same store: loads from disk, no training.
        second_cache = BiSIMTrainerCache(store=store)
        loaded = second_cache.get_or_train(filled, amended, cfg)
        assert second_cache.hits == 1 and second_cache.misses == 0
        f2, r2 = loaded.impute(filled, amended)
        np.testing.assert_array_equal(f1, f2)
        np.testing.assert_array_equal(r1, r2)

    def test_corrupt_disk_entry_degrades_to_miss(
        self, toy_map, tmp_path
    ):
        filled, amended = toy_map
        store = ArtifactStore(tmp_path / "cache")
        cfg = small_config()
        cache = BiSIMTrainerCache(store=store)
        key = cache.key_for(filled, amended, cfg)
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_bytes(b"truncated garbage")
        # A poisoned entry must retrain, not crash, and be overwritten.
        trainer = cache.get_or_train(filled, amended, cfg)
        assert trainer is not None
        assert cache.misses == 1
        fresh = BiSIMTrainerCache(store=store)
        assert fresh.get(key) is not None  # healthy entry now on disk

    def test_store_factory_resolves_lazily(self, toy_map, tmp_path):
        filled, amended = toy_map
        calls = []

        def factory():
            calls.append(1)
            return ArtifactStore(tmp_path / "lazy")

        cache = BiSIMTrainerCache(store_factory=factory)
        assert calls == []  # nothing at construction time
        cache.get_or_train(filled, amended, small_config())
        assert calls == [1]
        cache.get_or_train(filled, amended, small_config())
        assert calls == [1]  # resolved exactly once
        assert cache.store is not None

    def test_memory_bound(self, toy_map):
        filled, amended = toy_map
        cache = BiSIMTrainerCache(max_memory_entries=1)
        cache.get_or_train(filled, amended, small_config())
        cache.get_or_train(filled, amended, small_config(epochs=2))
        assert len(cache._memory) == 1

    def test_imputer_uses_cache(self, toy_map):
        filled, amended = toy_map
        cache = BiSIMTrainerCache()
        imputer = BiSIMImputer(
            config=small_config(), trainer_cache=cache
        )
        first = imputer.impute(filled, amended)
        second = imputer.impute(filled, amended)
        assert cache.hits == 1
        np.testing.assert_array_equal(
            first.fingerprints, second.fingerprints
        )

    def test_cached_result_matches_fresh_training(self, toy_map):
        """The cache must be invisible: same outputs as a cold fit."""
        filled, amended = toy_map
        cached = BiSIMImputer(
            config=small_config(), trainer_cache=BiSIMTrainerCache()
        )
        cold = BiSIMImputer(config=small_config())
        warm = cached.impute(filled, amended)
        cached_again = cached.impute(filled, amended)
        fresh = cold.impute(filled, amended)
        np.testing.assert_array_equal(
            warm.fingerprints, fresh.fingerprints
        )
        np.testing.assert_array_equal(
            cached_again.fingerprints, fresh.fingerprints
        )
