"""BiSIM loss terms."""

import numpy as np
import pytest

from repro.bisim import BiSIM, BiSIMConfig, cross_loss, direction_loss, overall_loss


def _setup(seed=0, t=3, d=4, b=2):
    rng = np.random.default_rng(seed)
    cfg = BiSIMConfig(hidden_size=8, epochs=1, seed=5)
    model = BiSIM(d, cfg)
    fp = rng.random((b, t, d))
    m = np.ones((b, t, d))
    rp = rng.random((b, t, 2))
    k = np.ones((b, t, 2))
    times = np.cumsum(np.ones((b, t)), axis=1)
    return model, fp, m, rp, k, times


class TestLosses:
    def test_direction_loss_nonnegative_scalar(self):
        model, fp, m, rp, k, times = _setup()
        fwd, _ = model.forward(fp, m, rp, k, times)
        loss = direction_loss(fwd, fp, m, rp, k)
        assert loss.data.size == 1
        assert loss.item() >= 0.0

    def test_cross_loss_zero_for_identical_directions(self):
        model, fp, m, rp, k, times = _setup()
        fwd, _ = model.forward(fp, m, rp, k, times)
        loss = cross_loss(fwd, fwd, m, k)
        assert loss.item() == pytest.approx(0.0, abs=1e-12)

    def test_overall_includes_all_terms(self):
        model, fp, m, rp, k, times = _setup()
        fwd, bwd = model.forward(fp, m, rp, k, times)
        full = overall_loss(fwd, bwd, fp, m, rp, k, use_cross=True)
        no_cross = overall_loss(
            fwd, bwd, fp, m, rp, k, use_cross=False
        )
        cross = cross_loss(fwd, bwd, m, k)
        assert full.item() == pytest.approx(
            no_cross.item() + cross.item()
        )

    def test_overall_forward_only(self):
        model, fp, m, rp, k, times = _setup()
        fwd, _ = model.forward(fp, m, rp, k, times)
        loss = overall_loss(fwd, None, fp, m, rp, k)
        assert loss.item() == pytest.approx(
            direction_loss(fwd, fp, m, rp, k).item()
        )

    def test_loss_backward_reaches_parameters(self):
        model, fp, m, rp, k, times = _setup()
        fwd, bwd = model.forward(fp, m, rp, k, times)
        loss = overall_loss(fwd, bwd, fp, m, rp, k)
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)
