"""Online fingerprint imputation (the future-work extension)."""

import numpy as np
import pytest

from repro.bisim import BiSIMConfig, OnlineImputer
from repro.constants import RSSI_MAX, RSSI_MIN
from repro.core import TopoACDifferentiator
from repro.exceptions import ImputationError
from repro.imputers import fill_mnars


@pytest.fixture(scope="module")
def online(kaide_smoke):
    rm = kaide_smoke.radio_map
    mask = TopoACDifferentiator(
        entities=kaide_smoke.venue.plan.entities
    ).differentiate(rm)
    filled, amended = fill_mnars(rm, mask)
    imputer = OnlineImputer.fit(
        filled,
        amended,
        BiSIMConfig(hidden_size=12, epochs=5),
    )
    return imputer, filled


class TestOnlineImputer:
    def test_observed_entries_pass_through(self, online, kaide_smoke):
        imputer, filled = online
        rng = np.random.default_rng(0)
        pos = kaide_smoke.venue.reference_points[0]
        meas = kaide_smoke.channel.measure(pos, rng)
        out = imputer.impute_fingerprint(meas.rssi)
        obs = np.isfinite(meas.rssi)
        np.testing.assert_allclose(out[obs], meas.rssi[obs])

    def test_output_complete_and_in_range(self, online, kaide_smoke):
        imputer, _ = online
        rng = np.random.default_rng(1)
        pos = kaide_smoke.venue.reference_points[-1]
        meas = kaide_smoke.channel.measure(pos, rng)
        out = imputer.impute_fingerprint(meas.rssi)
        assert np.isfinite(out).all()
        missing = ~np.isfinite(meas.rssi)
        assert (out[missing] >= RSSI_MIN - 1).all()
        assert (out[missing] <= RSSI_MAX).all()

    def test_all_missing_query(self, online, kaide_smoke):
        imputer, _ = online
        d = kaide_smoke.radio_map.n_aps
        out = imputer.impute_fingerprint(np.full(d, np.nan))
        assert np.isfinite(out).all()

    def test_batch_matches_single(self, online, kaide_smoke):
        imputer, _ = online
        rng = np.random.default_rng(2)
        pos = kaide_smoke.venue.reference_points[1]
        meas = kaide_smoke.channel.measure(pos, rng)
        single = imputer.impute_fingerprint(meas.rssi)
        batch = imputer.impute_batch(meas.rssi[None, :])
        np.testing.assert_allclose(batch[0], single)

    def test_wrong_dimension_rejected(self, online):
        imputer, _ = online
        with pytest.raises(ImputationError):
            imputer.impute_fingerprint(np.zeros(3))

    def test_batch_parity_with_reference(self, online, kaide_smoke):
        """Vectorized impute_batch == per-query reference, mixed masks."""
        imputer, _ = online
        rng = np.random.default_rng(7)
        rps = kaide_smoke.venue.reference_points
        queries = np.stack(
            [
                kaide_smoke.channel.measure(rps[i % len(rps)], rng).rssi
                for i in range(16)
            ]
        )
        # Include an all-missing scan (pattern-similarity fallback).
        queries[-1] = np.nan
        reference = np.stack(
            [imputer.impute_fingerprint(q) for q in queries]
        )
        batched = imputer.impute_batch(queries)
        np.testing.assert_allclose(batched, reference, atol=1e-8)

    def test_empty_batch(self, online, kaide_smoke):
        imputer, _ = online
        d = kaide_smoke.radio_map.n_aps
        out = imputer.impute_batch(np.empty((0, d)))
        assert out.shape == (0, d)

    def test_single_query_shape_contract(self, online, kaide_smoke):
        imputer, _ = online
        rng = np.random.default_rng(9)
        pos = kaide_smoke.venue.reference_points[2]
        scan = kaide_smoke.channel.measure(pos, rng).rssi
        squeezed = imputer.impute_batch(scan)
        assert squeezed.shape == scan.shape
        kept = imputer.impute_batch(scan, squeeze=False)
        assert kept.shape == (1, scan.size)
        np.testing.assert_allclose(squeezed, kept[0])

    def test_batch_wrong_width_rejected(self, online):
        imputer, _ = online
        with pytest.raises(ImputationError):
            imputer.impute_batch(np.zeros((2, 3)))

    def test_unfitted_trainer_rejected(self, kaide_smoke):
        from repro.bisim import BiSIMTrainer

        trainer = BiSIMTrainer(
            kaide_smoke.radio_map.n_aps,
            BiSIMConfig(hidden_size=8, epochs=1),
        )
        with pytest.raises(ImputationError):
            OnlineImputer(trainer)
