"""Online fingerprint imputation (the future-work extension)."""

import numpy as np
import pytest

from repro.bisim import BiSIMConfig, OnlineImputer
from repro.constants import RSSI_MAX, RSSI_MIN
from repro.core import TopoACDifferentiator
from repro.exceptions import ImputationError
from repro.imputers import fill_mnars


@pytest.fixture(scope="module")
def online(kaide_smoke):
    rm = kaide_smoke.radio_map
    mask = TopoACDifferentiator(
        entities=kaide_smoke.venue.plan.entities
    ).differentiate(rm)
    filled, amended = fill_mnars(rm, mask)
    imputer = OnlineImputer.fit(
        filled,
        amended,
        BiSIMConfig(hidden_size=12, epochs=5),
    )
    return imputer, filled


class TestOnlineImputer:
    def test_observed_entries_pass_through(self, online, kaide_smoke):
        imputer, filled = online
        rng = np.random.default_rng(0)
        pos = kaide_smoke.venue.reference_points[0]
        meas = kaide_smoke.channel.measure(pos, rng)
        out = imputer.impute_fingerprint(meas.rssi)
        obs = np.isfinite(meas.rssi)
        np.testing.assert_allclose(out[obs], meas.rssi[obs])

    def test_output_complete_and_in_range(self, online, kaide_smoke):
        imputer, _ = online
        rng = np.random.default_rng(1)
        pos = kaide_smoke.venue.reference_points[-1]
        meas = kaide_smoke.channel.measure(pos, rng)
        out = imputer.impute_fingerprint(meas.rssi)
        assert np.isfinite(out).all()
        missing = ~np.isfinite(meas.rssi)
        assert (out[missing] >= RSSI_MIN - 1).all()
        assert (out[missing] <= RSSI_MAX).all()

    def test_all_missing_query(self, online, kaide_smoke):
        imputer, _ = online
        d = kaide_smoke.radio_map.n_aps
        out = imputer.impute_fingerprint(np.full(d, np.nan))
        assert np.isfinite(out).all()

    def test_batch_matches_single(self, online, kaide_smoke):
        imputer, _ = online
        rng = np.random.default_rng(2)
        pos = kaide_smoke.venue.reference_points[1]
        meas = kaide_smoke.channel.measure(pos, rng)
        single = imputer.impute_fingerprint(meas.rssi)
        batch = imputer.impute_batch(meas.rssi[None, :])
        np.testing.assert_allclose(batch[0], single)

    def test_wrong_dimension_rejected(self, online):
        imputer, _ = online
        with pytest.raises(ImputationError):
            imputer.impute_fingerprint(np.zeros(3))

    def test_batch_parity_with_reference(self, online, kaide_smoke):
        """Vectorized impute_batch == per-query reference, mixed masks."""
        imputer, _ = online
        rng = np.random.default_rng(7)
        rps = kaide_smoke.venue.reference_points
        queries = np.stack(
            [
                kaide_smoke.channel.measure(rps[i % len(rps)], rng).rssi
                for i in range(16)
            ]
        )
        # Include an all-missing scan (pattern-similarity fallback).
        queries[-1] = np.nan
        reference = np.stack(
            [imputer.impute_fingerprint(q) for q in queries]
        )
        batched = imputer.impute_batch(queries)
        np.testing.assert_allclose(batched, reference, atol=1e-8)

    def test_blend_matches_per_dimension_loop(
        self, online, kaide_smoke
    ):
        """The vectorized encoder/KNN blend tail == the per-dimension
        loop it replaced, to 1e-8 (including NaN-KNN fallback dims)."""
        from repro.bisim.features import time_lag_vectors
        from repro.neuro import Tensor

        imputer, _ = online
        space = imputer.trainer.space
        model = imputer.trainer.model
        rng = np.random.default_rng(11)
        pos = kaide_smoke.venue.reference_points[3]
        fp = kaide_smoke.channel.measure(pos, rng).rssi.copy()
        # Knock out extra dims so some have no KNN coverage.
        fp[:: max(1, fp.size // 6)] = np.nan
        out = imputer.impute_fingerprint(fp)

        # Reference: the original algorithm with the per-dimension
        # blend loop, rebuilt from the imputer's own components.
        time_gap = 2.0
        query_mask = np.isfinite(fp).astype(float)
        query_norm = space.normalize_fp(fp) * query_mask
        chunk = imputer._most_similar_chunk(query_norm, query_mask)
        fp_seq = np.vstack([chunk.fingerprints, query_norm])
        m_seq = np.vstack([chunk.fp_mask, query_mask])
        times = np.concatenate(
            [
                chunk.times,
                [chunk.times[-1] + time_gap / space.time_lag_scale],
            ]
        )
        lags = time_lag_vectors(times, m_seq)
        state = model.encoder.initial_state(1)
        fc_last = None
        for i in range(fp_seq.shape[0]):
            _, fc_last, state = model.encoder.step(
                Tensor(fp_seq[None, i]),
                Tensor(m_seq[None, i]),
                Tensor(lags[None, i]),
                state,
            )
        imputed = space.denormalize_fp(fc_last.data[0])
        knn = imputer._knn_estimate(query_norm, query_mask)
        knn_dbm = space.denormalize_fp(knn)
        reference = fp.copy()
        for d in np.where(query_mask == 0)[0]:
            if np.isfinite(knn[d]):
                value = 0.5 * imputed[d] + 0.5 * knn_dbm[d]
            else:
                value = imputed[d]
            reference[d] = np.clip(value, RSSI_MIN, RSSI_MAX)
        assert (~np.isfinite(knn)).any()  # fallback dims exercised
        np.testing.assert_allclose(out, reference, atol=1e-8)

    def test_empty_batch(self, online, kaide_smoke):
        imputer, _ = online
        d = kaide_smoke.radio_map.n_aps
        out = imputer.impute_batch(np.empty((0, d)))
        assert out.shape == (0, d)

    def test_single_query_shape_contract(self, online, kaide_smoke):
        imputer, _ = online
        rng = np.random.default_rng(9)
        pos = kaide_smoke.venue.reference_points[2]
        scan = kaide_smoke.channel.measure(pos, rng).rssi
        squeezed = imputer.impute_batch(scan)
        assert squeezed.shape == scan.shape
        kept = imputer.impute_batch(scan, squeeze=False)
        assert kept.shape == (1, scan.size)
        np.testing.assert_allclose(squeezed, kept[0])

    def test_batch_wrong_width_rejected(self, online):
        imputer, _ = online
        with pytest.raises(ImputationError):
            imputer.impute_batch(np.zeros((2, 3)))

    def test_unfitted_trainer_rejected(self, kaide_smoke):
        from repro.bisim import BiSIMTrainer

        trainer = BiSIMTrainer(
            kaide_smoke.radio_map.n_aps,
            BiSIMConfig(hidden_size=8, epochs=1),
        )
        with pytest.raises(ImputationError):
            OnlineImputer(trainer)


class TestIncrementalIndex:
    """refreshed()/refresh_paths(): incremental context-index updates."""

    @pytest.fixture()
    def indexed(self, online, kaide_smoke):
        """The fitted imputer plus an extended map with one new path."""
        from repro.radiomap import concatenate_radio_maps

        imputer, filled = online
        mask = TopoACDifferentiator(
            entities=kaide_smoke.venue.plan.entities
        ).differentiate(kaide_smoke.radio_map)
        _, amended = fill_mnars(kaide_smoke.radio_map, mask)
        # Fake crowdsourced drop: clone the first path under a new id
        # with shifted times and slightly perturbed readings.
        first_pid = int(filled.path_ids.min())
        rows = np.where(filled.path_ids == first_pid)[0]
        extra = filled.subset(rows)
        extra.path_ids = np.full(
            rows.size, int(filled.path_ids.max()) + 1, dtype=int
        )
        extra.times = extra.times + 3.0
        obs = np.isfinite(extra.fingerprints)
        extra.fingerprints[obs] += 0.5
        new_map = concatenate_radio_maps([filled, extra])
        new_amended = np.vstack([amended, amended[rows]])
        new_pid = int(extra.path_ids[0])
        return imputer, new_map, new_amended, new_pid

    def test_refreshed_matches_full_reindex(self, indexed):
        imputer, new_map, new_amended, new_pid = indexed
        incremental = imputer.refreshed(new_map, new_amended, [new_pid])
        full = OnlineImputer(imputer.trainer)
        full.index(new_map, new_amended)
        np.testing.assert_array_equal(
            incremental.chunk_paths, full.chunk_paths
        )
        np.testing.assert_array_equal(
            incremental._last_fp, full._last_fp
        )
        np.testing.assert_array_equal(
            incremental._all_fp, full._all_fp
        )
        np.testing.assert_array_equal(
            incremental._chunk_lengths, full._chunk_lengths
        )
        queries = np.where(
            np.random.default_rng(4).random((6, new_map.n_aps)) < 0.8,
            np.nan,
            -60.0,
        )
        np.testing.assert_allclose(
            incremental.impute_batch(queries),
            full.impute_batch(queries),
            atol=0,
        )

    def test_refreshed_leaves_original_untouched(self, indexed):
        imputer, new_map, new_amended, new_pid = indexed
        before = len(imputer._chunks)
        imputer.refreshed(new_map, new_amended, [new_pid])
        assert len(imputer._chunks) == before
        assert new_pid not in set(imputer.chunk_paths)

    def test_refresh_paths_in_place(self, indexed):
        imputer, new_map, new_amended, new_pid = indexed
        clone = OnlineImputer(imputer.trainer)
        clone._set_chunks(
            list(imputer._chunks), list(imputer.chunk_paths)
        )
        n = clone.refresh_paths(new_map, new_amended, [new_pid])
        assert n == len(clone._chunks)
        assert new_pid in set(clone.chunk_paths)

    def test_legacy_index_falls_back_to_full(self, indexed):
        imputer, new_map, new_amended, new_pid = indexed
        legacy = OnlineImputer(imputer.trainer)
        legacy._set_chunks(list(imputer._chunks), None)
        assert legacy.chunk_paths is None
        refreshed = legacy.refreshed(new_map, new_amended, [new_pid])
        # Full rebuild: path metadata exists again afterwards.
        assert refreshed.chunk_paths is not None
        assert new_pid in set(refreshed.chunk_paths)
