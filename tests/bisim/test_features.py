"""BiSIM input features — pinned to the paper's Table IV example."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bisim import (
    batch_chunks,
    build_feature_space,
    prepare_chunks,
    stack_batch,
    time_lag_vectors,
)
from repro.core import MAROnlyDifferentiator
from repro.imputers import fill_mnars


class TestTableIVExample:
    """Times and masks from the paper's Tables III/IV; the expected
    time-lag vectors are transcribed from Table IV."""

    TIMES = np.array([1.0, 3.0, 8.0, 12.0, 16.0])
    MASK = np.array(
        [
            [1, 1, 1, 0, 0],
            [1, 0, 1, 0, 0],
            [0, 0, 1, 1, 0],
            [1, 1, 0, 0, 1],
            [0, 0, 0, 0, 0],
        ]
    )
    EXPECTED = np.array(
        [
            [0, 0, 0, 0, 0],
            [2, 2, 2, 2, 2],
            [5, 7, 5, 7, 7],
            [9, 11, 4, 4, 11],
            [4, 4, 8, 8, 4],
        ],
        dtype=float,
    )

    def test_matches_paper_recursion(self):
        # Note: the paper's prose example contains small arithmetic
        # slips (it mixes t-indices); the values here follow Eq. 1
        # applied mechanically to Table III's times and Table IV's
        # masks, which the paper's delta_5 row confirms.
        delta = time_lag_vectors(self.TIMES, self.MASK)
        np.testing.assert_allclose(delta, self.EXPECTED)

    def test_delta5_row_matches_paper_table(self):
        # Table IV prints delta_5 = (4, 4, 8, 8, 4) explicitly.
        delta = time_lag_vectors(self.TIMES, self.MASK)
        np.testing.assert_allclose(delta[4], [4, 4, 8, 8, 4])


class TestTimeLagProperties:
    def test_first_row_zero(self):
        delta = time_lag_vectors(
            np.array([5.0, 7.0]), np.ones((2, 3))
        )
        np.testing.assert_allclose(delta[0], 0.0)

    def test_fully_observed_equals_dt(self):
        times = np.array([0.0, 2.0, 5.0])
        delta = time_lag_vectors(times, np.ones((3, 2)))
        np.testing.assert_allclose(delta[1], 2.0)
        np.testing.assert_allclose(delta[2], 3.0)

    def test_never_observed_accumulates(self):
        times = np.array([0.0, 1.0, 4.0, 6.0])
        mask = np.zeros((4, 1))
        delta = time_lag_vectors(times, mask)
        np.testing.assert_allclose(delta[:, 0], [0, 1, 4, 6])

    @given(
        arrays(
            np.int64,
            st.tuples(st.integers(2, 8), st.integers(1, 5)),
            elements=st.integers(0, 1),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_lag_bounded_by_elapsed_time(self, mask):
        t_len = mask.shape[0]
        times = np.cumsum(
            np.random.default_rng(0).uniform(0.5, 2.0, size=t_len)
        )
        delta = time_lag_vectors(times, mask)
        elapsed = times - times[0]
        assert (delta <= elapsed[:, None] + 1e-9).all()
        assert (delta >= 0).all()


class TestChunking:
    def test_chunks_cover_all_rows(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        mask = MAROnlyDifferentiator().differentiate(rm)
        filled, amended = fill_mnars(rm, mask)
        space = build_feature_space(filled, 10.0)
        chunks = prepare_chunks(filled, amended, space, 5)
        rows = np.concatenate([c.rows for c in chunks])
        assert sorted(rows.tolist()) == list(range(rm.n_records))

    def test_chunk_length_bounded(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        mask = MAROnlyDifferentiator().differentiate(rm)
        filled, amended = fill_mnars(rm, mask)
        space = build_feature_space(filled, 10.0)
        chunks = prepare_chunks(filled, amended, space, 5)
        assert all(1 <= c.length <= 5 for c in chunks)

    def test_batches_group_equal_lengths(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        mask = MAROnlyDifferentiator().differentiate(rm)
        filled, amended = fill_mnars(rm, mask)
        space = build_feature_space(filled, 10.0)
        chunks = prepare_chunks(filled, amended, space, 5)
        for batch in batch_chunks(chunks, 8):
            assert len(batch) <= 8
            assert len({c.length for c in batch}) == 1
            stacked = stack_batch(batch)
            assert stacked[0].shape[0] == len(batch)


class TestFeatureSpace:
    def test_fp_round_trip(self, kaide_smoke):
        space = build_feature_space(kaide_smoke.radio_map, 10.0)
        values = np.array([-100.0, -75.0, 0.0])
        back = space.denormalize_fp(space.normalize_fp(values))
        np.testing.assert_allclose(back, values)

    def test_rp_round_trip(self, kaide_smoke):
        space = build_feature_space(kaide_smoke.radio_map, 10.0)
        observed = kaide_smoke.radio_map.rps[
            kaide_smoke.radio_map.rp_observed_mask
        ]
        back = space.denormalize_rp(space.normalize_rp(observed))
        np.testing.assert_allclose(back, observed)

    def test_nulls_normalise_to_zero(self, kaide_smoke):
        space = build_feature_space(kaide_smoke.radio_map, 10.0)
        out = space.normalize_fp(np.array([np.nan, -50.0]))
        assert out[0] == 0.0

    @given(st.floats(min_value=-100, max_value=0))
    @settings(max_examples=30, deadline=None)
    def test_fp_normalised_to_unit_interval(self, v):
        from repro.bisim.features import FeatureSpace

        space = FeatureSpace(
            rp_min=np.zeros(2), rp_span=np.ones(2), time_lag_scale=10.0
        )
        n = space.normalize_fp(np.array([v]))[0]
        assert 0.0 <= n <= 1.0


class TestBatchedTimeLagEdgeCases:
    """Eq. 1 over degenerate inputs the serving path can produce."""

    def test_single_step_sequences(self):
        """T=1: no predecessor, so every lag is the zero vector."""
        from repro.bisim import time_lag_vectors_batched

        times = np.array([[5.0], [9.0]])
        mask = np.ones((2, 1, 4))
        delta = time_lag_vectors_batched(times, mask)
        assert delta.shape == (2, 1, 4)
        np.testing.assert_array_equal(delta, np.zeros((2, 1, 4)))

    def test_all_missing_column_accumulates(self):
        """A dimension never observed accumulates t_i − t_0 forever."""
        from repro.bisim import time_lag_vectors_batched

        times = np.array([[1.0, 3.0, 8.0, 12.0]])
        mask = np.ones((1, 4, 2))
        mask[0, :, 1] = 0.0  # dimension 1 never observed
        delta = time_lag_vectors_batched(times, mask)
        # Observed dimension resets to the step gap each time.
        np.testing.assert_allclose(delta[0, :, 0], [0, 2, 5, 4])
        # Unobserved dimension keeps summing the gaps (Eq. 1 recursion).
        np.testing.assert_allclose(delta[0, :, 1], [0, 2, 7, 11])

    def test_all_rows_missing(self):
        """An entirely unobserved batch behaves like one long gap."""
        from repro.bisim import time_lag_vectors_batched

        times = np.array([[0.0, 1.0, 4.0]])
        mask = np.zeros((1, 3, 3))
        delta = time_lag_vectors_batched(times, mask)
        np.testing.assert_allclose(delta[0, :, 0], [0, 1, 4])

    def test_matches_single_sequence_path(self):
        """The batched kernel and the (T, D) wrapper agree."""
        from repro.bisim import time_lag_vectors, time_lag_vectors_batched

        rng = np.random.default_rng(5)
        times = np.sort(rng.uniform(0, 20, size=(3, 6)), axis=1)
        mask = (rng.random((3, 6, 4)) > 0.5).astype(float)
        batched = time_lag_vectors_batched(times, mask)
        for b in range(3):
            np.testing.assert_allclose(
                batched[b], time_lag_vectors(times[b], mask[b])
            )
