"""Attention units: weights, masking, ablation variants."""

import numpy as np
import pytest

from repro.bisim import (
    NoAttention,
    SparsityFriendlyAttention,
    VanillaBahdanauAttention,
)
from repro.neuro import Tensor

RNG = np.random.default_rng(19)
HIDDEN, D, B, T = 8, 5, 3, 4


def _latents_masks(mask_value=1.0):
    latents = [Tensor(RNG.normal(size=(B, HIDDEN))) for _ in range(T)]
    masks = [np.full((B, D), mask_value) for _ in range(T)]
    return latents, masks


class TestSparsityFriendly:
    def test_context_shape_is_ap_dimension(self):
        att = SparsityFriendlyAttention(HIDDEN, D, 6, RNG)
        latents, masks = _latents_masks()
        att.prepare(latents, masks)
        ctx = att.step(Tensor(RNG.normal(size=(B, HIDDEN))))
        assert ctx.shape == (B, D)
        assert att.context_size == D

    def test_fully_masked_dimension_contributes_zero(self):
        att = SparsityFriendlyAttention(HIDDEN, D, 6, RNG)
        latents, masks = _latents_masks()
        for m in masks:
            m[:, 2] = 0.0  # AP dim 2 never observed
        att.prepare(latents, masks)
        ctx = att.step(Tensor(RNG.normal(size=(B, HIDDEN))))
        np.testing.assert_allclose(ctx.data[:, 2], 0.0)

    def test_mask_zero_everywhere_gives_zero_context(self):
        att = SparsityFriendlyAttention(HIDDEN, D, 6, RNG)
        latents, masks = _latents_masks(mask_value=0.0)
        att.prepare(latents, masks)
        ctx = att.step(Tensor(RNG.normal(size=(B, HIDDEN))))
        np.testing.assert_allclose(ctx.data, 0.0)

    def test_context_is_convex_combination(self):
        # With all-ones masks, context lies in the convex hull of the
        # projected latents (softmax weights sum to 1).
        att = SparsityFriendlyAttention(HIDDEN, D, 6, RNG)
        latents, masks = _latents_masks()
        att.prepare(latents, masks)
        projected = np.stack(
            [att.project(h).data for h in latents], axis=0
        )  # (T, B, D)
        ctx = att.step(Tensor(np.zeros((B, HIDDEN))))
        lo = projected.min(axis=0) - 1e-9
        hi = projected.max(axis=0) + 1e-9
        assert (ctx.data >= lo).all() and (ctx.data <= hi).all()


class TestVanilla:
    def test_context_shape_is_hidden(self):
        att = VanillaBahdanauAttention(HIDDEN, 6, RNG)
        latents, masks = _latents_masks()
        att.prepare(latents, masks)
        ctx = att.step(Tensor(RNG.normal(size=(B, HIDDEN))))
        assert ctx.shape == (B, HIDDEN)
        assert att.context_size == HIDDEN

    def test_single_latent_returns_it(self):
        att = VanillaBahdanauAttention(HIDDEN, 6, RNG)
        h = Tensor(RNG.normal(size=(B, HIDDEN)))
        att.prepare([h], [np.ones((B, D))])
        ctx = att.step(Tensor(np.zeros((B, HIDDEN))))
        np.testing.assert_allclose(ctx.data, h.data)


class TestNoAttention:
    def test_returns_none(self):
        att = NoAttention()
        att.prepare([], [])
        assert att.step(Tensor(np.zeros((1, HIDDEN)))) is None
        assert att.context_size == 0
