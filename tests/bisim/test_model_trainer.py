"""BiSIM model and trainer behaviour."""

import numpy as np
import pytest

from repro.bisim import BiSIM, BiSIMConfig, BiSIMImputer, BiSIMTrainer
from repro.constants import RSSI_MAX, RSSI_MIN
from repro.core import TopoACDifferentiator
from repro.exceptions import ImputationError
from repro.imputers import fill_mnars, run_imputer


def _small_config(**kw):
    defaults = dict(hidden_size=12, epochs=4, batch_size=8, seed=3)
    defaults.update(kw)
    return BiSIMConfig(**defaults)


def _toy_batch(b=2, t=4, d=6, seed=0):
    rng = np.random.default_rng(seed)
    fp = rng.random((b, t, d))
    m = (rng.random((b, t, d)) > 0.4).astype(float)
    fp = fp * m
    rp = rng.random((b, t, 2))
    k = (rng.random((b, t, 1)) > 0.5).astype(float).repeat(2, axis=2)
    rp = rp * k
    times = np.cumsum(rng.uniform(0.5, 2.0, size=(b, t)), axis=1)
    return fp, m, rp, k, times


class TestModel:
    def test_output_lengths(self):
        model = BiSIM(6, _small_config())
        fp, m, rp, k, times = _toy_batch()
        fwd, bwd = model.forward(fp, m, rp, k, times)
        assert len(fwd.fc) == 4 and len(fwd.lc) == 4
        assert bwd is not None and len(bwd.fc) == 4

    def test_unidirectional_config(self):
        model = BiSIM(6, _small_config(bidirectional=False))
        fp, m, rp, k, times = _toy_batch()
        fwd, bwd = model.forward(fp, m, rp, k, times)
        assert bwd is None

    def test_observed_entries_preserved_in_fc(self):
        model = BiSIM(6, _small_config())
        fp, m, rp, k, times = _toy_batch()
        fwd, _ = model.forward(fp, m, rp, k, times)
        for i in range(4):
            obs = m[:, i] == 1
            np.testing.assert_allclose(
                fwd.fc[i].data[obs], fp[:, i][obs]
            )

    def test_observed_rps_preserved_in_lc(self):
        model = BiSIM(6, _small_config())
        fp, m, rp, k, times = _toy_batch()
        fwd, _ = model.forward(fp, m, rp, k, times)
        for j in range(4):
            obs = k[:, j] == 1
            np.testing.assert_allclose(
                fwd.lc[j].data[obs], rp[:, j][obs]
            )

    def test_impute_batch_shapes(self):
        model = BiSIM(6, _small_config())
        fp, m, rp, k, times = _toy_batch()
        f_out, l_out = model.impute_batch(fp, m, rp, k, times)
        assert f_out.shape == (2, 4, 6)
        assert l_out.shape == (2, 4, 2)

    def test_backward_direction_aligned(self):
        # With all entries observed, fc must equal the input in both
        # directions, proving output re-alignment is correct.
        model = BiSIM(6, _small_config())
        fp, m, rp, k, times = _toy_batch()
        m[:] = 1.0
        out = model.run_direction(fp, m, rp, k, times, reverse=True)
        for i in range(4):
            np.testing.assert_allclose(out.fc[i].data, fp[:, i])

    def test_attention_variants_construct(self):
        for kind in ("sparsity", "vanilla", "none"):
            model = BiSIM(6, _small_config(attention=kind))
            fp, m, rp, k, times = _toy_batch()
            f_out, l_out = model.impute_batch(fp, m, rp, k, times)
            assert np.isfinite(f_out).all()

    def test_invalid_n_aps(self):
        with pytest.raises(ImputationError):
            BiSIM(0, _small_config())


class TestConfigValidation:
    def test_bad_attention(self):
        with pytest.raises(ImputationError):
            BiSIMConfig(attention="transformer")

    def test_bad_decay(self):
        with pytest.raises(ImputationError):
            BiSIMConfig(decay_mode="exp")

    def test_cross_loss_disabled_without_bidirectional(self):
        cfg = BiSIMConfig(bidirectional=False, cross_loss=True)
        assert cfg.cross_loss is False


class TestTrainer:
    def test_loss_decreases(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        mask = TopoACDifferentiator(
            entities=kaide_smoke.venue.plan.entities
        ).differentiate(rm)
        filled, amended = fill_mnars(rm, mask)
        trainer = BiSIMTrainer(rm.n_aps, _small_config(epochs=12))
        history = trainer.fit(filled, amended)
        assert history.losses[-1] < history.losses[0]

    def test_impute_before_fit_rejected(self, kaide_smoke):
        trainer = BiSIMTrainer(
            kaide_smoke.radio_map.n_aps, _small_config()
        )
        with pytest.raises(ImputationError):
            trainer.impute(kaide_smoke.radio_map, np.ones((1, 1)))

    def test_imputer_end_to_end(self, kaide_smoke):
        rm = kaide_smoke.radio_map
        mask = TopoACDifferentiator(
            entities=kaide_smoke.venue.plan.entities
        ).differentiate(rm)
        imputer = BiSIMImputer(config=_small_config())
        result = run_imputer(imputer, rm, mask)
        # Complete output.
        assert np.isfinite(result.fingerprints).all()
        assert np.isfinite(result.rps).all()
        # Observed values untouched.
        obs = rm.rssi_observed_mask
        np.testing.assert_allclose(
            result.fingerprints[obs], rm.fingerprints[obs]
        )
        obs_rp = rm.rp_observed_mask
        np.testing.assert_allclose(
            result.rps[obs_rp], rm.rps[obs_rp]
        )
        # Imputed MARs within the observable range.
        mar = mask == 0
        assert (result.fingerprints[mar] >= RSSI_MIN).all()
        assert (result.fingerprints[mar] <= RSSI_MAX).all()
        assert result.elapsed_seconds > 0
