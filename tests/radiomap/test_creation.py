"""Radio-map creation: the paper's Table II → Table III example.

This transcribes the paper's worked example verbatim and asserts the
merge produces exactly the five records of Table III.
"""

import numpy as np
import pytest

from repro.exceptions import RadioMapError
from repro.radiomap import create_radio_map, create_radio_map_for_path
from repro.survey import RPRecord, RSSIRecord, WalkingSurveyRecordTable


@pytest.fixture
def table_ii() -> WalkingSurveyRecordTable:
    """The paper's Table II walking-survey record table (5 APs)."""
    t = WalkingSurveyRecordTable(path_id=0, n_aps=5)
    t.add(RPRecord(time=0.0, location=(1.0, 1.0)))  # t1, (x1, y1)
    t.add(RSSIRecord(time=1.0, readings={0: -70, 1: -83, 2: -76}))  # t2
    t.add(RSSIRecord(time=3.0, readings={0: -71, 2: -78}))  # t3
    t.add(RSSIRecord(time=8.0, readings={2: -80, 3: -68}))  # t4
    t.add(RPRecord(time=9.0, location=(5.0, 5.0)))  # t5, (x5, y5)
    t.add(RSSIRecord(time=12.0, readings={0: -74, 4: -80}))  # t6
    t.add(RSSIRecord(time=13.0, readings={1: -77, 4: -82}))  # t7
    t.add(RPRecord(time=16.0, location=(8.0, 8.0)))  # t8, (x8, y8)
    return t


class TestPaperExample:
    def test_produces_five_records(self, table_ii):
        rm = create_radio_map_for_path(table_ii, epsilon=1.0)
        assert rm.n_records == 5

    def test_record_1_rp_merged_with_rssi(self, table_ii):
        rm = create_radio_map_for_path(table_ii, epsilon=1.0)
        np.testing.assert_array_equal(
            rm.fingerprints[0],
            [-70.0, -83.0, -76.0, np.nan, np.nan],
        )
        assert tuple(rm.rps[0]) == (1.0, 1.0)
        # Table III reports the merged record at time t2.
        assert rm.times[0] == 1.0

    def test_record_2_unmerged_rssi(self, table_ii):
        rm = create_radio_map_for_path(table_ii, epsilon=1.0)
        np.testing.assert_array_equal(
            rm.fingerprints[1],
            [-71.0, np.nan, -78.0, np.nan, np.nan],
        )
        assert np.isnan(rm.rps[1]).all()
        assert rm.times[1] == 3.0

    def test_record_3_rssi_merged_with_rp(self, table_ii):
        rm = create_radio_map_for_path(table_ii, epsilon=1.0)
        np.testing.assert_array_equal(
            rm.fingerprints[2],
            [np.nan, np.nan, -80.0, -68.0, np.nan],
        )
        assert tuple(rm.rps[2]) == (5.0, 5.0)
        assert rm.times[2] == 8.0

    def test_record_4_step1_merge_of_t6_t7(self, table_ii):
        rm = create_radio_map_for_path(table_ii, epsilon=1.0)
        # Records at t6 and t7 merge (dt = 1 < ... wait, epsilon = 1
        # means dt < 1 is required; 13 - 12 = 1 is NOT below epsilon).
        # The paper's Table III shows them merged, i.e. it treats the
        # threshold as inclusive at 1 s; we match the paper's output by
        # merging dt < epsilon strictly but the example uses dt = 1, so
        # this test pins the paper-compatible behaviour.
        np.testing.assert_array_equal(
            rm.fingerprints[3],
            [-74.0, -77.0, np.nan, np.nan, -81.0],
        )
        assert np.isnan(rm.rps[3]).all()
        assert rm.times[3] == 12.0

    def test_record_5_lone_rp(self, table_ii):
        rm = create_radio_map_for_path(table_ii, epsilon=1.0)
        assert np.isnan(rm.fingerprints[4]).all()
        assert tuple(rm.rps[4]) == (8.0, 8.0)
        assert rm.times[4] == 16.0


class TestMergeRules:
    def test_overlapping_aps_averaged(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=2)
        t.add(RSSIRecord(time=0.0, readings={0: -70.0, 1: -80.0}))
        t.add(RSSIRecord(time=0.5, readings={0: -74.0}))
        rm = create_radio_map_for_path(t, epsilon=1.0)
        assert rm.n_records == 1
        assert rm.fingerprints[0, 0] == pytest.approx(-72.0)
        assert rm.fingerprints[0, 1] == pytest.approx(-80.0)

    def test_chain_merge_keeps_earliest_time(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=1)
        t.add(RSSIRecord(time=0.0, readings={0: -70.0}))
        t.add(RSSIRecord(time=0.5, readings={0: -72.0}))
        t.add(RSSIRecord(time=0.9, readings={0: -74.0}))
        rm = create_radio_map_for_path(t, epsilon=1.0)
        assert rm.n_records == 1
        assert rm.times[0] == 0.0

    def test_no_merge_beyond_epsilon(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=1)
        t.add(RSSIRecord(time=0.0, readings={0: -70.0}))
        t.add(RSSIRecord(time=5.0, readings={0: -72.0}))
        rm = create_radio_map_for_path(t, epsilon=1.0)
        assert rm.n_records == 2

    def test_rp_before_rssi_merges(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=1)
        t.add(RPRecord(time=0.0, location=(1.0, 2.0)))
        t.add(RSSIRecord(time=0.5, readings={0: -70.0}))
        rm = create_radio_map_for_path(t, epsilon=1.0)
        assert rm.n_records == 1
        assert tuple(rm.rps[0]) == (1.0, 2.0)

    def test_two_rps_do_not_merge(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=1)
        t.add(RPRecord(time=0.0, location=(1.0, 2.0)))
        t.add(RPRecord(time=0.5, location=(3.0, 4.0)))
        rm = create_radio_map_for_path(t, epsilon=1.0)
        assert rm.n_records == 2

    def test_negative_epsilon_rejected(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=1)
        with pytest.raises(RadioMapError):
            create_radio_map_for_path(t, epsilon=-1.0)

    def test_empty_tables_rejected(self):
        with pytest.raises(RadioMapError):
            create_radio_map([])

    def test_all_empty_paths_rejected(self):
        tables = [
            WalkingSurveyRecordTable(path_id=i, n_aps=2)
            for i in range(2)
        ]
        with pytest.raises(RadioMapError, match="empty"):
            create_radio_map(tables)

    def test_ap_count_mismatch_typed_error(self, table_ii):
        """Mixed-dimensionality tables fail up front, not in concat."""
        other = WalkingSurveyRecordTable(path_id=1, n_aps=3)
        other.add(RSSIRecord(time=0.0, readings={0: -60.0}))
        with pytest.raises(RadioMapError, match="disagree on AP count"):
            create_radio_map([table_ii, other])

    def test_out_of_range_ap_typed_error(self):
        """A record reading a non-existent AP raises RadioMapError,
        not a numpy IndexError."""
        t = WalkingSurveyRecordTable(path_id=0, n_aps=2)
        t.add(RSSIRecord(time=0.0, readings={7: -60.0}))
        with pytest.raises(RadioMapError, match="AP 7"):
            create_radio_map_for_path(t)

    def test_bad_truth_shape_typed_error(self):
        from repro.survey import RecordTruth

        t = WalkingSurveyRecordTable(path_id=0, n_aps=3)
        t.add(
            RSSIRecord(
                time=0.0,
                readings={0: -60.0},
                truth=RecordTruth(
                    position=(0.0, 0.0),
                    missing_type=np.array([1]),
                ),
            )
        )
        with pytest.raises(RadioMapError, match="missing_type"):
            create_radio_map_for_path(t)

    def test_multi_path_concatenation(self, table_ii):
        other = WalkingSurveyRecordTable(path_id=1, n_aps=5)
        other.add(RSSIRecord(time=0.0, readings={0: -60.0}))
        other.add(RSSIRecord(time=5.0, readings={1: -65.0}))
        rm = create_radio_map([table_ii, other])
        assert rm.n_records == 7
        assert set(np.unique(rm.path_ids)) == {0, 1}
