"""RadioMap container semantics."""

import numpy as np
import pytest

from repro.exceptions import RadioMapError
from repro.radiomap import RadioMap, concatenate_radio_maps


class TestRates:
    def test_missing_rates(self, tiny_radio_map):
        rm = tiny_radio_map
        # 25 cells, 10 observed.
        assert rm.missing_rssi_rate == pytest.approx(15 / 25)
        assert rm.missing_rp_rate == pytest.approx(2 / 5)

    def test_observed_masks(self, tiny_radio_map):
        rm = tiny_radio_map
        assert rm.rssi_observed_mask.sum() == 10
        np.testing.assert_array_equal(
            rm.rp_observed_mask, [True, False, True, False, True]
        )
        np.testing.assert_array_equal(
            rm.observed_rp_indices(), [0, 2, 4]
        )


class TestStructure:
    def test_shape_validation(self):
        with pytest.raises(RadioMapError):
            RadioMap(
                fingerprints=np.zeros((3, 2)),
                rps=np.zeros((2, 2)),
                times=np.zeros(3),
                path_ids=np.zeros(3, dtype=int),
            )

    def test_subset_copies(self, tiny_radio_map):
        sub = tiny_radio_map.subset(np.array([0, 2]))
        assert sub.n_records == 2
        sub.fingerprints[0, 0] = 0.0
        assert tiny_radio_map.fingerprints[0, 0] == -70.0

    def test_copy_independent(self, tiny_radio_map):
        c = tiny_radio_map.copy()
        c.rps[0] = [9.0, 9.0]
        assert tiny_radio_map.rps[0, 0] == 1.0

    def test_path_sequences_sorted(self):
        rm = RadioMap(
            fingerprints=np.zeros((4, 2)),
            rps=np.zeros((4, 2)),
            times=np.array([3.0, 1.0, 2.0, 0.0]),
            path_ids=np.array([0, 0, 1, 1]),
        )
        seqs = dict(rm.path_sequences())
        np.testing.assert_array_equal(seqs[0], [1, 0])
        np.testing.assert_array_equal(seqs[1], [3, 2])

    def test_describe(self, tiny_radio_map):
        s = tiny_radio_map.describe()
        assert "N=5" in s and "D=5" in s


class TestConcatenate:
    def test_empty_rejected(self):
        with pytest.raises(RadioMapError):
            concatenate_radio_maps([])

    def test_dimension_mismatch_rejected(self, tiny_radio_map):
        other = RadioMap(
            fingerprints=np.zeros((1, 3)),
            rps=np.zeros((1, 2)),
            times=np.zeros(1),
            path_ids=np.zeros(1, dtype=int),
        )
        with pytest.raises(RadioMapError):
            concatenate_radio_maps([tiny_radio_map, other])

    def test_concatenation(self, tiny_radio_map):
        both = concatenate_radio_maps(
            [tiny_radio_map, tiny_radio_map.copy()]
        )
        assert both.n_records == 10
