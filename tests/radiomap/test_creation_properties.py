"""Property-based invariants of the Section II-B merge."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radiomap import create_radio_map_for_path
from repro.survey import RPRecord, RSSIRecord, WalkingSurveyRecordTable

N_APS = 4


@st.composite
def record_tables(draw):
    """Random time-sorted walking-survey tables."""
    n = draw(st.integers(min_value=1, max_value=12))
    table = WalkingSurveyRecordTable(path_id=0, n_aps=N_APS)
    t = 0.0
    for _ in range(n):
        t += draw(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False)
        )
        if draw(st.booleans()):
            aps = draw(
                st.lists(
                    st.integers(min_value=0, max_value=N_APS - 1),
                    min_size=1,
                    max_size=N_APS,
                    unique=True,
                )
            )
            readings = {
                ap: float(
                    draw(st.integers(min_value=-99, max_value=0))
                )
                for ap in aps
            }
            table.add(RSSIRecord(time=t, readings=readings))
        else:
            table.add(
                RPRecord(
                    time=t,
                    location=(
                        float(draw(st.integers(0, 50))),
                        float(draw(st.integers(0, 50))),
                    ),
                )
            )
    return table


class TestMergeInvariants:
    @given(record_tables())
    @settings(max_examples=80, deadline=None)
    def test_no_observation_dimension_lost(self, table):
        """Every AP observed in the raw table stays observed somewhere."""
        rm = create_radio_map_for_path(table, epsilon=1.0)
        observed_input = {
            ap for r in table.rssi_records for ap in r.readings
        }
        observed_output = set(
            np.where(np.isfinite(rm.fingerprints).any(axis=0))[0]
        )
        assert observed_input == observed_output

    @given(record_tables())
    @settings(max_examples=80, deadline=None)
    def test_record_count_never_grows(self, table):
        rm = create_radio_map_for_path(table, epsilon=1.0)
        assert 1 <= rm.n_records <= len(table)

    @given(record_tables())
    @settings(max_examples=80, deadline=None)
    def test_times_sorted(self, table):
        rm = create_radio_map_for_path(table, epsilon=1.0)
        assert (np.diff(rm.times) >= 0).all()

    @given(record_tables())
    @settings(max_examples=80, deadline=None)
    def test_values_within_observed_range(self, table):
        """Merged values are averages, so they stay inside the per-AP
        min/max of the raw readings."""
        rm = create_radio_map_for_path(table, epsilon=1.0)
        for ap in range(N_APS):
            raw = [
                r.readings[ap]
                for r in table.rssi_records
                if ap in r.readings
            ]
            if not raw:
                continue
            col = rm.fingerprints[:, ap]
            col = col[np.isfinite(col)]
            assert (col >= min(raw) - 1e-9).all()
            assert (col <= max(raw) + 1e-9).all()

    @given(record_tables())
    @settings(max_examples=80, deadline=None)
    def test_rp_count_preserved_or_merged(self, table):
        """Observed RPs in the map never exceed raw RP records, and at
        least one survives whenever the table has any."""
        rm = create_radio_map_for_path(table, epsilon=1.0)
        n_raw_rps = len(table.rp_records)
        n_map_rps = int(rm.rp_observed_mask.sum())
        assert n_map_rps <= n_raw_rps
        if n_raw_rps:
            assert n_map_rps >= 1
