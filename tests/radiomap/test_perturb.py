"""Perturbations: alpha/beta removal, RP density scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RadioMapError
from repro.radiomap import (
    RadioMap,
    remove_for_imputation_eval,
    remove_rssi_fraction,
    scale_rp_density,
)
from repro.survey import RPRecord, RSSIRecord, WalkingSurveyRecordTable


def _dense_map(n=20, d=10, seed=0) -> RadioMap:
    rng = np.random.default_rng(seed)
    return RadioMap(
        fingerprints=rng.uniform(-90, -30, size=(n, d)),
        rps=rng.uniform(0, 50, size=(n, 2)),
        times=np.arange(n, dtype=float),
        path_ids=np.zeros(n, dtype=int),
    )


class TestAlphaRemoval:
    @given(st.floats(min_value=0.0, max_value=0.6))
    @settings(max_examples=30, deadline=None)
    def test_removes_requested_fraction(self, alpha):
        rm = _dense_map()
        out = remove_rssi_fraction(rm, alpha, np.random.default_rng(1))
        total = rm.rssi_observed_mask.sum()
        removed = total - out.rssi_observed_mask.sum()
        assert removed == round(alpha * total)

    def test_zero_alpha_identity(self):
        rm = _dense_map()
        out = remove_rssi_fraction(rm, 0.0, np.random.default_rng(1))
        np.testing.assert_array_equal(out.fingerprints, rm.fingerprints)

    def test_original_untouched(self):
        rm = _dense_map()
        remove_rssi_fraction(rm, 0.5, np.random.default_rng(1))
        assert np.isfinite(rm.fingerprints).all()

    def test_invalid_alpha(self):
        with pytest.raises(RadioMapError):
            remove_rssi_fraction(_dense_map(), 1.0, np.random.default_rng(1))


class TestBetaRemoval:
    def test_held_back_values_match(self):
        rm = _dense_map()
        out, removed = remove_for_imputation_eval(
            rm, 0.3, np.random.default_rng(2)
        )
        for (r, c), v in zip(removed.rssi_indices, removed.rssi_values):
            assert np.isnan(out.fingerprints[r, c])
            assert rm.fingerprints[r, c] == v
        for r, v in zip(removed.rp_indices, removed.rp_values):
            assert np.isnan(out.rps[r]).all()
            np.testing.assert_array_equal(rm.rps[r], v)

    def test_rssi_only(self):
        rm = _dense_map()
        out, removed = remove_for_imputation_eval(
            rm, 0.3, np.random.default_rng(2), remove_rps=False
        )
        assert removed.rp_indices.size == 0
        assert out.rp_observed_mask.all()

    def test_rp_only(self):
        rm = _dense_map()
        out, removed = remove_for_imputation_eval(
            rm, 0.3, np.random.default_rng(2), remove_rssis=False
        )
        assert removed.rssi_indices.shape[0] == 0
        assert np.isfinite(out.fingerprints).all()

    def test_invalid_beta(self):
        with pytest.raises(RadioMapError):
            remove_for_imputation_eval(
                _dense_map(), -0.1, np.random.default_rng(2)
            )


class TestRPDensity:
    def _tables(self):
        t = WalkingSurveyRecordTable(path_id=0, n_aps=2)
        for i in range(50):
            t.add(RPRecord(time=float(2 * i), location=(float(i), 0.0)))
            t.add(RSSIRecord(time=2 * i + 1.0, readings={0: -70.0}))
        return [t]

    def test_full_density_identity(self):
        tables = self._tables()
        out = scale_rp_density(tables, 1.0, np.random.default_rng(3))
        assert out is tables

    def test_reduces_rp_records_only(self):
        tables = self._tables()
        out = scale_rp_density(tables, 0.5, np.random.default_rng(3))
        kept_rps = len(out[0].rp_records)
        assert 10 <= kept_rps <= 40  # ~25 expected
        assert len(out[0].rssi_records) == 50

    def test_invalid_density(self):
        with pytest.raises(RadioMapError):
            scale_rp_density(self._tables(), 0.0, np.random.default_rng(3))
