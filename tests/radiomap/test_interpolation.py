"""Linear RP interpolation along paths."""

import numpy as np
import pytest

from repro.radiomap import RadioMap, interpolate_rps_linear


def _map_with_rps(times, rps, path_ids=None):
    n = len(times)
    return RadioMap(
        fingerprints=np.zeros((n, 3)),
        rps=np.asarray(rps, dtype=float),
        times=np.asarray(times, dtype=float),
        path_ids=np.asarray(
            path_ids if path_ids is not None else [0] * n, dtype=int
        ),
    )


nan = np.nan


class TestInterpolation:
    def test_midpoint(self):
        rm = _map_with_rps(
            [0.0, 5.0, 10.0],
            [[0, 0], [nan, nan], [10, 20]],
        )
        out = interpolate_rps_linear(rm)
        np.testing.assert_allclose(out[1], [5.0, 10.0])

    def test_time_weighted(self):
        rm = _map_with_rps(
            [0.0, 2.0, 10.0],
            [[0, 0], [nan, nan], [10, 0]],
        )
        out = interpolate_rps_linear(rm)
        np.testing.assert_allclose(out[1], [2.0, 0.0])

    def test_clamps_before_first(self):
        rm = _map_with_rps(
            [0.0, 5.0], [[nan, nan], [3, 4]]
        )
        out = interpolate_rps_linear(rm)
        np.testing.assert_allclose(out[0], [3.0, 4.0])

    def test_clamps_after_last(self):
        rm = _map_with_rps(
            [0.0, 5.0], [[3, 4], [nan, nan]]
        )
        out = interpolate_rps_linear(rm)
        np.testing.assert_allclose(out[1], [3.0, 4.0])

    def test_observed_unchanged(self):
        rm = _map_with_rps(
            [0.0, 5.0, 10.0],
            [[1, 2], [nan, nan], [3, 4]],
        )
        out = interpolate_rps_linear(rm)
        np.testing.assert_allclose(out[0], [1.0, 2.0])
        np.testing.assert_allclose(out[2], [3.0, 4.0])

    def test_paths_independent(self):
        rm = _map_with_rps(
            [0.0, 5.0, 0.0, 5.0],
            [[0, 0], [nan, nan], [100, 100], [nan, nan]],
            path_ids=[0, 0, 1, 1],
        )
        out = interpolate_rps_linear(rm)
        np.testing.assert_allclose(out[1], [0.0, 0.0])
        np.testing.assert_allclose(out[3], [100.0, 100.0])

    def test_pathless_fallback_to_global_mean(self):
        rm = _map_with_rps(
            [0.0, 1.0, 0.0],
            [[2, 4], [6, 8], [nan, nan]],
            path_ids=[0, 0, 1],
        )
        out = interpolate_rps_linear(rm)
        np.testing.assert_allclose(out[2], [4.0, 6.0])

    def test_all_null_map(self):
        rm = _map_with_rps([0.0, 1.0], [[nan, nan], [nan, nan]])
        out = interpolate_rps_linear(rm)
        np.testing.assert_allclose(out, 0.0)

    def test_paper_table_iii_interpolation(self, tiny_radio_map):
        out = interpolate_rps_linear(tiny_radio_map)
        # Record 2 at t=3 between (1,1)@t=1 and (5,5)@t=8.
        frac = (3 - 1) / (8 - 1)
        np.testing.assert_allclose(
            out[1], [1 + 4 * frac, 1 + 4 * frac]
        )
        # Record 4 at t=12 between (5,5)@t=8 and (8,8)@t=16.
        np.testing.assert_allclose(out[3], [6.5, 6.5])
