"""Radio-map persistence round trips."""

import numpy as np
import pytest

from repro.exceptions import RadioMapError
from repro.radiomap import (
    RadioMapTruth,
    export_csv,
    load_radio_map,
    save_radio_map,
)


class TestNpzRoundTrip:
    def test_round_trip(self, tiny_radio_map, tmp_path):
        path = tmp_path / "map.npz"
        save_radio_map(tiny_radio_map, path)
        loaded = load_radio_map(path)
        np.testing.assert_array_equal(
            loaded.fingerprints, tiny_radio_map.fingerprints
        )
        np.testing.assert_array_equal(loaded.rps, tiny_radio_map.rps)
        np.testing.assert_array_equal(loaded.times, tiny_radio_map.times)
        assert loaded.truth is None

    def test_round_trip_with_truth(self, tiny_radio_map, tmp_path):
        tiny_radio_map.truth = RadioMapTruth(
            missing_type=np.ones((5, 5), dtype=int),
            positions=np.zeros((5, 2)),
        )
        path = tmp_path / "map.npz"
        save_radio_map(tiny_radio_map, path)
        loaded = load_radio_map(path)
        assert loaded.truth is not None
        np.testing.assert_array_equal(
            loaded.truth.missing_type, tiny_radio_map.truth.missing_type
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(RadioMapError):
            load_radio_map(tmp_path / "nope.npz")


class TestCsvExport:
    def test_csv_shape_and_nulls(self, tiny_radio_map, tmp_path):
        path = tmp_path / "map.csv"
        export_csv(tiny_radio_map, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 6  # header + 5 records
        header = lines[0].split(",")
        assert header[:4] == ["time", "path_id", "x", "y"]
        assert len(header) == 4 + 5
        # Record 5 (all-null fingerprint) has empty RSSI cells.
        last = lines[5].split(",")
        assert all(cell == "" for cell in last[4:])
        assert last[2] != "" and last[3] != ""
