"""Radio-map persistence round trips."""

import numpy as np
import pytest

from repro.exceptions import RadioMapError
from repro.radiomap import (
    RadioMap,
    RadioMapTruth,
    export_csv,
    load_radio_map,
    save_radio_map,
)


class TestNpzRoundTrip:
    def test_round_trip(self, tiny_radio_map, tmp_path):
        path = tmp_path / "map.npz"
        save_radio_map(tiny_radio_map, path)
        loaded = load_radio_map(path)
        np.testing.assert_array_equal(
            loaded.fingerprints, tiny_radio_map.fingerprints
        )
        np.testing.assert_array_equal(loaded.rps, tiny_radio_map.rps)
        np.testing.assert_array_equal(loaded.times, tiny_radio_map.times)
        assert loaded.truth is None

    def test_round_trip_with_truth(self, tiny_radio_map, tmp_path):
        tiny_radio_map.truth = RadioMapTruth(
            missing_type=np.ones((5, 5), dtype=int),
            positions=np.zeros((5, 2)),
        )
        path = tmp_path / "map.npz"
        save_radio_map(tiny_radio_map, path)
        loaded = load_radio_map(path)
        assert loaded.truth is not None
        np.testing.assert_array_equal(
            loaded.truth.missing_type, tiny_radio_map.truth.missing_type
        )

    def test_round_trip_all_truth_arrays(self, tiny_radio_map, tmp_path):
        """All three optional truth arrays survive the round trip."""
        rng = np.random.default_rng(8)
        clean = rng.uniform(-95, -40, size=(5, 5))
        clean[0, 0] = np.nan
        tiny_radio_map.truth = RadioMapTruth(
            missing_type=rng.integers(-1, 2, size=(5, 5)),
            positions=rng.uniform(0, 10, size=(5, 2)),
            clean_fingerprints=clean,
        )
        path = tmp_path / "map.npz"
        save_radio_map(tiny_radio_map, path)
        loaded = load_radio_map(path)
        truth = loaded.truth
        assert truth is not None
        np.testing.assert_array_equal(
            truth.missing_type, tiny_radio_map.truth.missing_type
        )
        np.testing.assert_array_equal(
            truth.positions, tiny_radio_map.truth.positions
        )
        np.testing.assert_array_equal(
            truth.clean_fingerprints,
            tiny_radio_map.truth.clean_fingerprints,
        )

    def test_partial_truth_arrays_stay_none(
        self, tiny_radio_map, tmp_path
    ):
        tiny_radio_map.truth = RadioMapTruth(
            positions=np.zeros((5, 2))
        )
        path = tmp_path / "map.npz"
        save_radio_map(tiny_radio_map, path)
        loaded = load_radio_map(path)
        assert loaded.truth.missing_type is None
        assert loaded.truth.clean_fingerprints is None
        np.testing.assert_array_equal(
            loaded.truth.positions, np.zeros((5, 2))
        )

    def test_unsupported_version_rejected(
        self, tiny_radio_map, tmp_path
    ):
        import json

        path = tmp_path / "map.npz"
        save_radio_map(tiny_radio_map, path)
        with np.load(path, allow_pickle=True) as data:
            arrays = {k: data[k] for k in data.files if k != "meta"}
        arrays["meta"] = np.array(
            [json.dumps({"version": 99})], dtype=object
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(
            RadioMapError, match="unsupported radio-map format"
        ):
            load_radio_map(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(RadioMapError):
            load_radio_map(tmp_path / "nope.npz")


class TestRoundTripEdgeCases:
    """All-NaN cells, zero-AP maps, single-record maps."""

    def test_all_nan_cells_round_trip(self, tmp_path):
        """A map whose every reading and RP is null survives intact
        (unmerged RP-less scans produce exactly this shape)."""
        rm = RadioMap(
            fingerprints=np.full((4, 3), np.nan),
            rps=np.full((4, 2), np.nan),
            times=np.arange(4.0),
            path_ids=np.zeros(4, dtype=int),
        )
        path = tmp_path / "allnan.npz"
        save_radio_map(rm, path)
        loaded = load_radio_map(path)
        assert np.isnan(loaded.fingerprints).all()
        assert np.isnan(loaded.rps).all()
        assert loaded.missing_rssi_rate == 1.0
        assert loaded.missing_rp_rate == 1.0
        np.testing.assert_array_equal(loaded.times, rm.times)

    def test_zero_ap_map_round_trip(self, tmp_path):
        """D=0 maps (venue with no audible APs yet) keep their shape."""
        rm = RadioMap(
            fingerprints=np.empty((3, 0)),
            rps=np.array([[0.0, 1.0], [2.0, 3.0], [np.nan, np.nan]]),
            times=np.arange(3.0),
            path_ids=np.zeros(3, dtype=int),
        )
        path = tmp_path / "zeroap.npz"
        save_radio_map(rm, path)
        loaded = load_radio_map(path)
        assert loaded.n_aps == 0
        assert loaded.n_records == 3
        np.testing.assert_array_equal(loaded.rps, rm.rps)

    def test_zero_ap_csv_export(self, tmp_path):
        rm = RadioMap(
            fingerprints=np.empty((2, 0)),
            rps=np.zeros((2, 2)),
            times=np.arange(2.0),
            path_ids=np.zeros(2, dtype=int),
        )
        path = tmp_path / "zeroap.csv"
        export_csv(rm, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,path_id,x,y"
        assert len(lines) == 3

    def test_single_record_map_round_trip(self, tmp_path):
        rm = RadioMap(
            fingerprints=np.array([[np.nan, -72.5]]),
            rps=np.array([[4.0, 5.0]]),
            times=np.array([1.5]),
            path_ids=np.array([3]),
            truth=RadioMapTruth(
                missing_type=np.array([[-1, 1]]),
                positions=np.array([[4.1, 5.2]]),
            ),
        )
        path = tmp_path / "single.npz"
        save_radio_map(rm, path)
        loaded = load_radio_map(path)
        assert loaded.n_records == 1
        np.testing.assert_array_equal(
            loaded.fingerprints, rm.fingerprints
        )
        np.testing.assert_array_equal(
            loaded.truth.missing_type, rm.truth.missing_type
        )
        assert loaded.path_ids[0] == 3


class TestCsvExport:
    def test_csv_shape_and_nulls(self, tiny_radio_map, tmp_path):
        path = tmp_path / "map.csv"
        export_csv(tiny_radio_map, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 6  # header + 5 records
        header = lines[0].split(",")
        assert header[:4] == ["time", "path_id", "x", "y"]
        assert len(header) == 4 + 5
        # Record 5 (all-null fingerprint) has empty RSSI cells.
        last = lines[5].split(",")
        assert all(cell == "" for cell in last[4:])
        assert last[2] != "" and last[3] != ""
