"""Streaming RadioMapBuilder: batch parity, deltas, merging."""

import numpy as np
import pytest

from repro.exceptions import RadioMapError
from repro.radiomap import (
    RadioMapBuilder,
    RadioMapDelta,
    apply_radio_map_delta,
    create_radio_map,
)
from repro.survey import RecordTruth, RPRecord, RSSIRecord, WalkingSurveyRecordTable


def assert_maps_equal(a, b):
    np.testing.assert_array_equal(a.fingerprints, b.fingerprints)
    np.testing.assert_array_equal(a.rps, b.rps)
    np.testing.assert_array_equal(a.times, b.times)
    np.testing.assert_array_equal(a.path_ids, b.path_ids)
    assert (a.truth is None) == (b.truth is None)
    if a.truth is not None:
        np.testing.assert_array_equal(
            a.truth.missing_type, b.truth.missing_type
        )
        np.testing.assert_array_equal(
            a.truth.positions, b.truth.positions
        )


def interleaved_chunks(tables, rng, max_chunk=5):
    """Split each path's stream into chunks; interleave across paths.

    Per-path order is preserved (each surveyor's gateway delivers in
    order) while paths interleave arbitrarily — the realistic
    streaming arrival.  Records with tied timestamps keep arrival
    order, so only this interleaving is order-independent on real
    survey data; full shuffles are exercised on distinct-timestamp
    streams below.
    """
    per_path = []
    for table in tables:
        records = list(table.records)
        chunks = []
        i = 0
        while i < len(records):
            size = int(rng.integers(1, max_chunk + 1))
            chunks.append((table.path_id, records[i : i + size]))
            i += size
        per_path.append(chunks)
    merged = []
    while any(per_path):
        alive = [c for c in per_path if c]
        merged.append(alive[rng.integers(0, len(alive))].pop(0))
    return merged


class TestBatchParity:
    def test_wrapper_matches_dataset_map(self, kaide_smoke):
        """create_radio_map (now builder-backed) is bit-compatible."""
        rebuilt = create_radio_map(kaide_smoke.survey_tables)
        assert_maps_equal(rebuilt, kaide_smoke.radio_map)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_interleaved_chunking_bit_identical(self, kaide_smoke, seed):
        """Any chunking/interleaving of the streams → the batch map."""
        tables = sorted(
            kaide_smoke.survey_tables, key=lambda t: t.path_id
        )
        batch = create_radio_map(tables)
        rng = np.random.default_rng(seed)
        builder = RadioMapBuilder(tables[0].n_aps)
        for path_id, records in interleaved_chunks(tables, rng):
            builder.add_records(path_id, records)
        assert_maps_equal(builder.snapshot(), batch)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_full_shuffle_distinct_times(self, seed):
        """Distinct timestamps: even fully shuffled record delivery
        (chunks of one path out of order) matches the batch map."""
        rng = np.random.default_rng(seed)
        tables = []
        for pid in range(3):
            table = WalkingSurveyRecordTable(path_id=pid, n_aps=4)
            t = 0.0
            for _ in range(int(rng.integers(5, 15))):
                t += float(rng.uniform(0.1, 3.0))
                if rng.random() < 0.7:
                    aps = rng.choice(4, size=rng.integers(1, 4), replace=False)
                    table.add(
                        RSSIRecord(
                            time=t,
                            readings={
                                int(a): float(rng.uniform(-95, -40))
                                for a in aps
                            },
                        )
                    )
                else:
                    table.add(
                        RPRecord(
                            time=t,
                            location=(
                                float(rng.uniform(0, 50)),
                                float(rng.uniform(0, 50)),
                            ),
                        )
                    )
            tables.append(table)
        batch = create_radio_map(tables)
        chunks = []
        for table in tables:
            records = list(table.records)
            i = 0
            while i < len(records):
                size = int(rng.integers(1, 5))
                chunks.append((table.path_id, records[i : i + size]))
                i += size
        rng.shuffle(chunks)
        builder = RadioMapBuilder(4)
        for path_id, records in chunks:
            builder.add_records(path_id, records)
        assert_maps_equal(builder.snapshot(), batch)

    def test_merged_builders_match_single(self, kaide_smoke):
        tables = sorted(
            kaide_smoke.survey_tables, key=lambda t: t.path_id
        )
        one = RadioMapBuilder(tables[0].n_aps)
        for t in tables:
            one.add_table(t)
        rng = np.random.default_rng(7)
        left = RadioMapBuilder(tables[0].n_aps)
        right = RadioMapBuilder(tables[0].n_aps)
        # Whole paths go to one builder or the other (merging
        # interleaves across paths; within-path order is preserved).
        for table in tables:
            target = left if rng.random() < 0.5 else right
            target.add_table(table)
        assert_maps_equal(
            left.merge(right).snapshot(), one.snapshot()
        )

    def test_incremental_cells_match_rebuild(self):
        """In-order folding equals the out-of-order re-fold path."""
        records = [
            RSSIRecord(time=t, readings={0: -70.0 - t})
            for t in (0.0, 0.5, 1.2, 1.6, 4.0)
        ]
        forward = RadioMapBuilder(2)
        forward.add_records(0, records)
        backward = RadioMapBuilder(2)
        backward.add_records(0, records[::-1])
        assert_maps_equal(forward.snapshot(), backward.snapshot())


class TestDeltas:
    def test_drain_then_apply_reproduces_snapshot(self, kaide_smoke):
        tables = sorted(
            kaide_smoke.survey_tables, key=lambda t: t.path_id
        )
        builder = RadioMapBuilder(tables[0].n_aps)
        builder.add_table(tables[0])
        base = builder.snapshot()
        assert builder.drain_delta() is not None
        for t in tables[1:]:
            builder.add_table(t)
        delta = builder.drain_delta()
        assert set(delta.path_ids) == {t.path_id for t in tables[1:]}
        assert_maps_equal(
            apply_radio_map_delta(base, delta), builder.snapshot()
        )

    def test_late_records_redeliver_whole_path(self, kaide_smoke):
        """A late chunk re-dirties its path; apply stays bit-exact."""
        tables = sorted(
            kaide_smoke.survey_tables, key=lambda t: t.path_id
        )
        builder = RadioMapBuilder(tables[0].n_aps)
        head = tables[0].records[: len(tables[0]) // 2]
        tail = tables[0].records[len(tables[0]) // 2 :]
        for t in tables[1:]:
            builder.add_table(t)
        builder.add_records(tables[0].path_id, tail)
        base = builder.snapshot()
        builder.drain_delta()
        builder.add_records(tables[0].path_id, head)  # late chunk
        delta = builder.drain_delta()
        assert tuple(delta.path_ids) == (tables[0].path_id,)
        assert_maps_equal(
            apply_radio_map_delta(base, delta), builder.snapshot()
        )

    def test_mark_dirty_restores_drained_paths(self):
        builder = RadioMapBuilder(3)
        builder.add_record(0, RSSIRecord(time=0.0, readings={0: -60.0}))
        delta = builder.drain_delta()
        assert builder.drain_delta() is None
        builder.mark_dirty(delta.path_ids)
        redelivered = builder.drain_delta()
        np.testing.assert_array_equal(
            redelivered.records.fingerprints, delta.records.fingerprints
        )
        # Unknown paths are ignored rather than invented.
        builder.mark_dirty([99])
        assert builder.drain_delta() is None

    def test_late_chunk_defers_refold(self, kaide_smoke):
        """A whole late chunk triggers one re-fold at materialisation,
        not one per record — and stays bit-exact."""
        tables = sorted(
            kaide_smoke.survey_tables, key=lambda t: t.path_id
        )
        table = tables[0]
        half = len(table) // 2
        builder = RadioMapBuilder(table.n_aps)
        builder.add_records(table.path_id, table.records[half:])
        builder.add_records(table.path_id, table.records[:half])  # late
        state = builder._paths[table.path_id]
        assert state.stale  # re-fold deferred until a read
        expected = create_radio_map([table])
        assert_maps_equal(builder.snapshot(), expected)
        assert not state.stale

    def test_drain_empty_returns_none(self):
        builder = RadioMapBuilder(3)
        assert builder.drain_delta() is None
        builder.add_record(0, RSSIRecord(time=0.0, readings={0: -60.0}))
        assert builder.drain_delta() is not None
        assert builder.drain_delta() is None

    def test_dirty_paths_tracking(self):
        builder = RadioMapBuilder(3)
        builder.add_record(4, RSSIRecord(time=0.0, readings={0: -60.0}))
        builder.add_record(2, RSSIRecord(time=0.0, readings={1: -61.0}))
        assert builder.dirty_paths() == (2, 4)
        builder.drain_delta()
        assert builder.dirty_paths() == ()

    def test_delta_rejects_undeclared_paths(self):
        builder = RadioMapBuilder(2)
        builder.add_record(0, RSSIRecord(time=0.0, readings={0: -60.0}))
        snap = builder.snapshot()
        with pytest.raises(RadioMapError):
            RadioMapDelta(path_ids=np.array([1]), records=snap)

    def test_apply_rejects_ap_mismatch(self):
        b2 = RadioMapBuilder(2)
        b2.add_record(0, RSSIRecord(time=0.0, readings={0: -60.0}))
        b3 = RadioMapBuilder(3)
        b3.add_record(1, RSSIRecord(time=0.0, readings={0: -60.0}))
        delta = b3.drain_delta()
        with pytest.raises(RadioMapError):
            apply_radio_map_delta(b2.snapshot(), delta)


class TestRunningCells:
    def test_pairwise_average_and_count(self):
        builder = RadioMapBuilder(2, epsilon=1.0)
        builder.add_record(
            0, RSSIRecord(time=0.0, readings={0: -60.0, 1: -80.0})
        )
        builder.add_record(0, RSSIRecord(time=1.0, readings={0: -70.0}))
        state = builder._paths[0]
        assert len(state.cells) == 1
        cell = state.cells[0]
        assert cell.count == 2
        np.testing.assert_allclose(cell.rssi, [-65.0, -80.0])
        assert builder.n_cells == 1

    def test_truth_survives_streaming(self):
        truth = RecordTruth(
            position=(1.0, 2.0),
            missing_type=np.array([1, -1]),
        )
        builder = RadioMapBuilder(2)
        builder.add_record(
            0,
            RSSIRecord(time=0.0, readings={0: -60.0}, truth=truth),
        )
        snap = builder.snapshot()
        assert snap.truth is not None
        np.testing.assert_array_equal(
            snap.truth.missing_type, [[1, -1]]
        )


class TestValidation:
    def test_ap_out_of_range_typed_error(self):
        builder = RadioMapBuilder(2)
        with pytest.raises(RadioMapError, match="AP 5"):
            builder.add_record(
                0, RSSIRecord(time=0.0, readings={5: -60.0})
            )

    def test_non_finite_reading_typed_error(self):
        builder = RadioMapBuilder(2)
        with pytest.raises(RadioMapError, match="non-finite"):
            builder.add_record(
                0, RSSIRecord(time=0.0, readings={0: np.nan})
            )

    def test_truth_shape_mismatch_typed_error(self):
        builder = RadioMapBuilder(3)
        truth = RecordTruth(
            position=(0.0, 0.0), missing_type=np.array([1, 0])
        )
        with pytest.raises(RadioMapError, match="missing_type"):
            builder.add_record(
                0,
                RSSIRecord(time=0.0, readings={0: -60.0}, truth=truth),
            )

    def test_unknown_record_type_rejected(self):
        builder = RadioMapBuilder(2)
        with pytest.raises(RadioMapError, match="unknown record"):
            builder.add_record(0, object())

    def test_table_ap_mismatch_rejected(self):
        builder = RadioMapBuilder(2)
        table = WalkingSurveyRecordTable(path_id=0, n_aps=3)
        with pytest.raises(RadioMapError, match="APs"):
            builder.add_table(table)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(RadioMapError):
            RadioMapBuilder(2, epsilon=-0.1)

    def test_empty_snapshot_rejected(self):
        with pytest.raises(RadioMapError, match="no records"):
            RadioMapBuilder(2).snapshot()

    def test_merge_mismatched_builders_rejected(self):
        with pytest.raises(RadioMapError):
            RadioMapBuilder(2).merge(RadioMapBuilder(3))
        with pytest.raises(RadioMapError):
            RadioMapBuilder(2, epsilon=1.0).merge(
                RadioMapBuilder(2, epsilon=2.0)
            )

    def test_rp_record_streams(self):
        builder = RadioMapBuilder(2, epsilon=1.0)
        builder.add_record(
            0, RPRecord(time=0.0, location=(1.0, 1.0))
        )
        builder.add_record(
            0, RSSIRecord(time=0.5, readings={0: -60.0})
        )
        snap = builder.snapshot()
        # Step 2 attached the RP to the adjacent RSSI record.
        assert snap.n_records == 1
        np.testing.assert_allclose(snap.rps[0], [1.0, 1.0])
