"""Polygon type: area, containment, intersection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geometry import Polygon, bounding_box_of

unit_square = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])


class TestConstruction:
    def test_needs_three_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_needs_2d_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0, 0), (1, 1, 1), (2, 0, 0)])

    def test_rectangle_validates_extent(self):
        with pytest.raises(GeometryError):
            Polygon.rectangle(0, 0, 0, 1)

    def test_len(self):
        assert len(unit_square) == 4


class TestArea:
    def test_unit_square(self):
        assert unit_square.area == pytest.approx(1.0)

    def test_triangle(self):
        tri = Polygon([(0, 0), (4, 0), (0, 3)])
        assert tri.area == pytest.approx(6.0)

    def test_winding_independent(self):
        cw = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])
        assert cw.area == pytest.approx(unit_square.area)

    @given(
        st.floats(min_value=0.1, max_value=20),
        st.floats(min_value=0.1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_rectangle_area(self, w, h):
        r = Polygon.rectangle(0, 0, w, h)
        assert r.area == pytest.approx(w * h, rel=1e-9)


class TestCentroidBounds:
    def test_square_centroid(self):
        assert unit_square.centroid == pytest.approx([0.5, 0.5])

    def test_bounds(self):
        assert unit_square.bounds == (0.0, 0.0, 1.0, 1.0)

    def test_bounding_box_of(self):
        box = bounding_box_of([(1, 2), (3, -1), (0, 5)])
        assert box == (0.0, -1.0, 3.0, 5.0)

    def test_bounding_box_empty(self):
        with pytest.raises(GeometryError):
            bounding_box_of([])


class TestContainment:
    def test_interior(self):
        assert unit_square.contains_point((0.5, 0.5))

    def test_exterior(self):
        assert not unit_square.contains_point((1.5, 0.5))

    def test_boundary_included_by_default(self):
        assert unit_square.contains_point((1.0, 0.5))

    def test_boundary_excluded_on_request(self):
        assert not unit_square.contains_point((1.0, 0.5), boundary=False)

    def test_vertex(self):
        assert unit_square.contains_point((0.0, 0.0))

    def test_vectorized_matches_scalar(self, rng):
        poly = Polygon([(0, 0), (4, 0), (4, 2), (2, 4), (0, 2)])
        pts = rng.uniform(-1, 5, size=(100, 2))
        vec = poly.contains_points(pts)
        for i, p in enumerate(pts):
            # Skip near-boundary points where conventions differ.
            scalar_strict = poly.contains_point(tuple(p), boundary=False)
            scalar_loose = poly.contains_point(tuple(p), boundary=True)
            if scalar_strict == scalar_loose:
                assert vec[i] == scalar_strict

    @given(st.floats(min_value=0.05, max_value=0.95), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=50, deadline=None)
    def test_interior_points_inside(self, x, y):
        assert unit_square.contains_point((x, y))


class TestIntersection:
    def test_segment_crossing_edge(self):
        assert unit_square.intersects_segment((-1, 0.5), (2, 0.5))

    def test_segment_inside(self):
        assert unit_square.intersects_segment((0.2, 0.2), (0.8, 0.8))

    def test_segment_outside(self):
        assert not unit_square.intersects_segment((2, 2), (3, 3))

    def test_polygon_overlap(self):
        other = Polygon.rectangle(0.5, 0.5, 2, 2)
        assert unit_square.intersects_polygon(other)

    def test_polygon_containment_counts(self):
        inner = Polygon.rectangle(0.25, 0.25, 0.75, 0.75)
        assert unit_square.intersects_polygon(inner)
        assert inner.intersects_polygon(unit_square)

    def test_polygon_disjoint(self):
        other = Polygon.rectangle(5, 5, 6, 6)
        assert not unit_square.intersects_polygon(other)


class TestSampling:
    def test_sample_interior_point(self, rng):
        poly = Polygon.rectangle(2, 3, 4, 5)
        for _ in range(10):
            p = poly.sample_interior_point(rng)
            assert poly.contains_point(tuple(p))


class TestContainsPointsContract:
    """The vectorised contains_points contract the tracking
    constraint leans on: interior in, exterior out, boundary (edges,
    vertices, collinear points) controlled by the ``boundary`` flag,
    exactly like the scalar contains_point."""

    def test_vertices_are_boundary(self):
        verts = unit_square.vertices
        assert unit_square.contains_points(verts).all()
        assert not unit_square.contains_points(
            verts, boundary=False
        ).any()

    def test_edge_midpoints_are_boundary(self):
        mids = np.array(
            [(0.5, 0.0), (1.0, 0.5), (0.5, 1.0), (0.0, 0.5)]
        )
        assert unit_square.contains_points(mids).all()
        assert not unit_square.contains_points(
            mids, boundary=False
        ).any()

    def test_collinear_boundary_points(self):
        """Points on an edge's carrier line: on the segment they are
        boundary; beyond its endpoints they are plain exterior."""
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        on_segment = np.array([(1.0, 0.0), (3.0, 0.0), (4.0, 2.0)])
        beyond = np.array([(5.0, 0.0), (-1.0, 0.0), (4.0, 5.0)])
        assert poly.contains_points(on_segment).all()
        assert not poly.contains_points(
            on_segment, boundary=False
        ).any()
        assert not poly.contains_points(beyond).any()
        assert not poly.contains_points(beyond, boundary=False).any()

    def test_degenerate_zero_area_polygon(self):
        """A collinear 'polygon' is all boundary: only points on the
        segment are ever contained, and only with boundary=True."""
        sliver = Polygon([(0, 0), (2, 0), (4, 0)])
        assert sliver.area == 0.0
        pts = np.array(
            [(1.0, 0.0), (4.0, 0.0), (5.0, 0.0), (1.0, 0.5)]
        )
        np.testing.assert_array_equal(
            sliver.contains_points(pts),
            [True, True, False, False],
        )
        assert not sliver.contains_points(pts, boundary=False).any()

    def test_matches_scalar_on_boundary_cases(self):
        poly = Polygon([(0, 0), (4, 0), (4, 2), (2, 4), (0, 2)])
        cases = np.array(
            [
                (0.0, 0.0),   # vertex
                (2.0, 4.0),   # apex vertex
                (2.0, 0.0),   # edge midpoint
                (3.0, 3.0),   # diagonal edge point
                (1.0, 1.0),   # interior
                (5.0, 5.0),   # exterior
                (2.0, -0.1),  # just outside an edge
            ]
        )
        for boundary in (True, False):
            vec = poly.contains_points(cases, boundary=boundary)
            for i, p in enumerate(cases):
                assert vec[i] == poly.contains_point(
                    tuple(p), boundary=boundary
                ), (p, boundary)

    def test_single_point_shape(self):
        assert unit_square.contains_points(
            np.array([0.5, 0.5])
        ).tolist() == [True]
