"""Convex hull: Andrew monotone chain properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import GeometryError
from repro.geometry import Polygon, convex_hull, hull_area, hull_polygon

finite_points = arrays(
    np.float64,
    st.tuples(st.integers(min_value=1, max_value=25), st.just(2)),
    elements=st.floats(min_value=-100, max_value=100, width=64),
)


class TestConvexHull:
    def test_square_hull(self):
        pts = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        hull = convex_hull(pts)
        assert hull.shape == (4, 2)
        assert {tuple(p) for p in hull} == {
            (0, 0),
            (1, 0),
            (1, 1),
            (0, 1),
        }

    def test_single_point(self):
        hull = convex_hull([(2, 3)])
        assert hull.shape == (1, 2)

    def test_two_points(self):
        hull = convex_hull([(0, 0), (1, 1)])
        assert hull.shape == (2, 2)

    def test_collinear(self):
        hull = convex_hull([(0, 0), (1, 1), (2, 2), (3, 3)])
        assert hull.shape == (2, 2)
        assert {tuple(p) for p in hull} == {(0, 0), (3, 3)}

    def test_duplicates_removed(self):
        hull = convex_hull([(0, 0), (0, 0), (1, 0), (0, 1)])
        assert hull.shape == (3, 2)

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            convex_hull(np.empty((0, 2)))

    @given(finite_points)
    @settings(max_examples=100, deadline=None)
    def test_all_points_inside_hull(self, pts):
        hull = convex_hull(pts)
        if hull.shape[0] < 3:
            return  # degenerate; nothing to check
        poly = Polygon(hull)
        for p in pts:
            assert poly.contains_point(tuple(p))

    @given(finite_points)
    @settings(max_examples=100, deadline=None)
    def test_hull_idempotent(self, pts):
        h1 = convex_hull(pts)
        h2 = convex_hull(h1)
        assert h1.shape == h2.shape
        assert {tuple(np.round(p, 9)) for p in h1} == {
            tuple(np.round(p, 9)) for p in h2
        }

    @given(finite_points)
    @settings(max_examples=60, deadline=None)
    def test_hull_ccw_orientation(self, pts):
        hull = convex_hull(pts)
        if hull.shape[0] < 3:
            return
        # Shoelace sum positive for counter-clockwise order.
        x, y = hull[:, 0], hull[:, 1]
        signed = np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))
        assert signed > 0


class TestHullHelpers:
    def test_hull_polygon_degenerate_none(self):
        assert hull_polygon([(0, 0), (1, 1)]) is None

    def test_hull_area_square(self):
        pts = [(0, 0), (2, 0), (2, 2), (0, 2), (1, 1)]
        assert hull_area(pts) == pytest.approx(4.0)

    def test_hull_area_degenerate_zero(self):
        assert hull_area([(0, 0), (5, 5)]) == 0.0
