"""Segment primitives: intersection, crossing counts, polylines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    count_crossings_vectorized,
    count_segment_crossings,
    interpolate_along,
    orientation,
    path_length,
    segment_intersection_point,
    segments_intersect,
)

coords = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)
points = st.tuples(coords, coords)


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation((0, 0), (1, 0), (0, 1)) == 1

    def test_clockwise(self):
        assert orientation((0, 0), (0, 1), (1, 0)) == -1

    def test_collinear(self):
        assert orientation((0, 0), (1, 1), (2, 2)) == 0


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_parallel_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_shared_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_t_junction(self):
        assert segments_intersect((0, 0), (2, 0), (1, -1), (1, 0))

    @given(points, points, points, points)
    @settings(max_examples=150, deadline=None)
    def test_symmetry(self, a1, a2, b1, b2):
        assert segments_intersect(a1, a2, b1, b2) == segments_intersect(
            b1, b2, a1, a2
        )


class TestIntersectionPoint:
    def test_crossing_point(self):
        p = segment_intersection_point((0, 0), (2, 2), (0, 2), (2, 0))
        assert p == pytest.approx((1.0, 1.0))

    def test_none_when_disjoint(self):
        assert (
            segment_intersection_point((0, 0), (1, 0), (0, 1), (1, 1))
            is None
        )

    def test_collinear_overlap_midpoint(self):
        p = segment_intersection_point((0, 0), (2, 0), (1, 0), (3, 0))
        assert p is not None
        assert 1.0 <= p[0] <= 2.0
        assert p[1] == pytest.approx(0.0)


class TestCrossingCounts:
    def test_counts_walls(self):
        walls = [((1, -1), (1, 1)), ((2, -1), (2, 1)), ((5, -1), (5, 1))]
        assert count_segment_crossings((0, 0), (3, 0), walls) == 2

    def test_empty_walls(self):
        assert count_segment_crossings((0, 0), (3, 0), []) == 0

    def test_vectorized_matches_scalar(self, rng):
        walls = [
            (tuple(rng.uniform(0, 10, 2)), tuple(rng.uniform(0, 10, 2)))
            for _ in range(12)
        ]
        starts = np.array([w[0] for w in walls])
        ends = np.array([w[1] for w in walls])
        origin = np.array([0.0, 0.0])
        targets = rng.uniform(0, 10, size=(20, 2))
        vec = count_crossings_vectorized(origin, targets, starts, ends)
        for i, t in enumerate(targets):
            scalar = count_segment_crossings(
                tuple(origin), tuple(t), walls
            )
            assert vec[i] == scalar

    def test_vectorized_no_walls(self):
        empty = np.empty((0, 2))
        out = count_crossings_vectorized(
            np.zeros(2), np.ones((3, 2)), empty, empty
        )
        assert (out == 0).all()


class TestPolyline:
    def test_path_length(self):
        pts = np.array([[0, 0], [3, 0], [3, 4]])
        assert path_length(pts) == pytest.approx(7.0)

    def test_path_length_single_point(self):
        assert path_length(np.array([[1, 2]])) == 0.0

    def test_interpolate_endpoints(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert interpolate_along(pts, 0.0) == pytest.approx([0, 0])
        assert interpolate_along(pts, 10.0) == pytest.approx([10, 0])

    def test_interpolate_clamps(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert interpolate_along(pts, 99.0) == pytest.approx([10, 0])
        assert interpolate_along(pts, -5.0) == pytest.approx([0, 0])

    def test_interpolate_mid_corner(self):
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [4.0, 4.0]])
        assert interpolate_along(pts, 6.0) == pytest.approx([4.0, 2.0])

    @given(st.floats(min_value=0, max_value=7))
    @settings(max_examples=50, deadline=None)
    def test_interpolated_point_on_path(self, s):
        pts = np.array([[0.0, 0.0], [3.0, 0.0], [3.0, 4.0]])
        p = interpolate_along(pts, s)
        # Point must lie on one of the two segments.
        on_first = abs(p[1]) < 1e-9 and -1e-9 <= p[0] <= 3 + 1e-9
        on_second = abs(p[0] - 3) < 1e-9 and -1e-9 <= p[1] <= 4 + 1e-9
        assert on_first or on_second
