"""contains_points boundary contracts under stacked-floor composition.

Stacking floors composes geometry in ways a single floor plan never
does: two floors' walkable MultiPolygons share wall segments (aligned
towers stack one plate), portal footprints sit flush against — and
straddle — those walls, and degenerate portals can collapse to
zero-area slivers.  The floor hand-off logic keys off
``contains_points`` over exactly these shapes, so the boundary
conventions must hold through the composition, not just per polygon.
"""

import numpy as np
import pytest

from repro.geometry import MultiPolygon, Polygon

# Two corridor plates meeting at the shared wall x = 4 — the cross
# section of an aligned tower's hallway on consecutive floors.
west = Polygon.rectangle(0, 0, 4, 2)
east = Polygon.rectangle(4, 0, 8, 2)
plate = MultiPolygon([west, east])


class TestSharedWalls:
    """Points on a wall two member polygons share."""

    wall = np.array([(4.0, 0.0), (4.0, 1.0), (4.0, 2.0)])

    def test_wall_is_boundary_of_both_members(self):
        assert west.contains_points(self.wall).all()
        assert east.contains_points(self.wall).all()
        assert not west.contains_points(
            self.wall, boundary=False
        ).any()
        assert not east.contains_points(
            self.wall, boundary=False
        ).any()

    def test_union_keeps_wall_with_boundary(self):
        """The union contains the shared wall exactly when either
        member does: boundary=True keeps it, boundary=False drops it
        even though the wall is interior to the *union's* extent —
        contains_points composes per member, it does not dissolve
        shared walls."""
        assert plate.contains_points(self.wall).all()
        assert not plate.contains_points(
            self.wall, boundary=False
        ).any()

    def test_interior_near_wall_is_both_sided(self):
        near = np.array([(3.999, 1.0), (4.001, 1.0)])
        strict = plate.contains_points(near, boundary=False)
        assert strict.all()
        assert west.contains_points(near, boundary=False).tolist() == [
            True,
            False,
        ]

    def test_scalar_agrees_on_wall(self):
        for p in map(tuple, self.wall):
            assert plate.contains_point(p)
            assert west.contains_point(p) and east.contains_point(p)


class TestPortalFootprintStraddle:
    """A portal footprint centred on the shared wall: half its area
    lies on each plate, its wall-parallel midline is boundary of both
    plates' members."""

    footprint = Polygon.rectangle(3.5, 0.5, 4.5, 1.5)

    def test_footprint_corners_split_across_members(self):
        corners = np.asarray(self.footprint.vertices, dtype=float)
        assert plate.contains_points(corners).all()
        # Two corners per side, none on the shared wall itself.
        assert west.contains_points(corners).sum() == 2
        assert east.contains_points(corners).sum() == 2

    def test_footprint_centre_is_wall_boundary(self):
        centre = np.array([(4.0, 1.0)])
        assert self.footprint.contains_points(
            centre, boundary=False
        ).all()
        assert plate.contains_points(centre).all()
        assert not plate.contains_points(
            centre, boundary=False
        ).any()

    def test_footprint_edge_on_wall_of_one_member(self):
        """A footprint flush against the wall from one side: its
        wall-side edge is that member's boundary and the other
        member's boundary too."""
        flush = Polygon.rectangle(3.0, 0.5, 4.0, 1.5)
        edge = np.array([(4.0, 0.5), (4.0, 1.0), (4.0, 1.5)])
        assert flush.contains_points(edge).all()
        assert not flush.contains_points(edge, boundary=False).any()
        assert east.contains_points(edge).all()
        assert not east.contains_points(edge, boundary=False).any()

    def test_vectorised_matches_scalar_across_members(self):
        pts = np.array(
            [
                (3.5, 0.5),  # footprint corner, west interior
                (4.5, 1.5),  # footprint corner, east interior
                (4.0, 1.0),  # shared-wall midpoint
                (4.0, 2.0),  # shared-wall top vertex
                (8.0, 2.0),  # outer corner of the union
                (9.0, 1.0),  # exterior
            ]
        )
        for boundary in (True, False):
            vec = plate.contains_points(pts, boundary=boundary)
            for i, p in enumerate(pts):
                want = west.contains_point(
                    tuple(p), boundary=boundary
                ) or east.contains_point(tuple(p), boundary=boundary)
                assert vec[i] == want, (p, boundary)


class TestDegeneratePortals:
    """Zero-area portal footprints: Polygon.rectangle refuses a zero
    extent, but raw vertex lists can still produce collinear slivers
    (a doorway collapsed to its threshold segment).  The containment
    contract must stay sane: all boundary, nothing strictly inside."""

    sliver = Polygon([(4.0, 0.5), (4.0, 1.0), (4.0, 1.5)])

    def test_rectangle_refuses_zero_extent(self):
        from repro.exceptions import GeometryError

        with pytest.raises(GeometryError):
            Polygon.rectangle(4.0, 0.5, 4.0, 1.5)

    def test_sliver_is_all_boundary(self):
        assert self.sliver.area == 0.0
        pts = np.array(
            [(4.0, 1.0), (4.0, 1.5), (4.0, 2.0), (4.1, 1.0)]
        )
        np.testing.assert_array_equal(
            self.sliver.contains_points(pts),
            [True, True, False, False],
        )
        assert not self.sliver.contains_points(
            pts, boundary=False
        ).any()

    def test_sliver_composes_into_multipolygon(self):
        """A walkable area with a degenerate member: the sliver
        contributes only its segment, and only with boundary=True —
        it can never make a strict-interior claim."""
        walk = MultiPolygon([west, self.sliver])
        on_sliver = np.array([(4.0, 1.0)])
        assert walk.contains_points(on_sliver).all()
        # boundary=False: the sliver claims nothing; the point also
        # sits on west's wall, so strict containment stays False.
        assert not walk.contains_points(
            on_sliver, boundary=False
        ).any()
        assert walk.total_area == west.area

    def test_sliver_off_wall_strict_is_empty(self):
        lone = Polygon([(10.0, 0.0), (10.0, 1.0), (10.0, 2.0)])
        walk = MultiPolygon([lone])
        pts = np.array([(10.0, 0.5), (10.0, 1.7)])
        assert walk.contains_points(pts).all()
        assert not walk.contains_points(pts, boundary=False).any()


class TestVenuePortalGeometry:
    """The generated tower's portals satisfy the composition contract
    the tracker relies on: every endpoint is walkable and inside its
    footprint, and every footprint overlaps the walkable area — even
    when the portal lands at an L-junction and its square footprint
    straddles the corridor wall."""

    def test_portal_footprints_reach_walkable(self, multifloor_smoke):
        venue = multifloor_smoke.venue
        for portal in venue.portals:
            for fid in (portal.floor_a, portal.floor_b):
                walkable = venue.floor(fid).walkable
                foot = portal.footprint(fid)
                assert walkable.contains_points(
                    portal.endpoint(fid)[None, :]
                ).all()
                assert foot.contains_point(
                    tuple(portal.endpoint(fid))
                )
                assert walkable.intersects_polygon(foot)
                # The walkable slice of the footprint is exactly the
                # straddle composition above: corners may hang past
                # the wall, but never all of them.
                corners = np.asarray(foot.vertices, dtype=float)
                assert walkable.contains_points(corners).any()

    def test_footprints_agree_across_floors(self, multifloor_smoke):
        """An aligned tower: the same xy is walkable on both sides of
        every portal (that's what makes the hand-off geometric)."""
        venue = multifloor_smoke.venue
        for portal in venue.portals:
            a = portal.endpoint(portal.floor_a)
            b = portal.endpoint(portal.floor_b)
            np.testing.assert_allclose(a, b)
