"""MultiPolygon container semantics."""

import numpy as np
import pytest

from repro.geometry import MultiPolygon, Polygon


@pytest.fixture
def two_rooms() -> MultiPolygon:
    return MultiPolygon(
        [
            Polygon.rectangle(0, 0, 2, 2),
            Polygon.rectangle(5, 5, 7, 7),
        ]
    )


class TestMultiPolygon:
    def test_len_and_iter(self, two_rooms):
        assert len(two_rooms) == 2
        assert all(isinstance(p, Polygon) for p in two_rooms)

    def test_total_area(self, two_rooms):
        assert two_rooms.total_area == pytest.approx(8.0)

    def test_contains_point(self, two_rooms):
        assert two_rooms.contains_point((1, 1))
        assert two_rooms.contains_point((6, 6))
        assert not two_rooms.contains_point((3.5, 3.5))

    def test_intersects_polygon(self, two_rooms):
        probe = Polygon.rectangle(1, 1, 6, 6)
        assert two_rooms.intersects_polygon(probe)
        probe_far = Polygon.rectangle(10, 10, 11, 11)
        assert not two_rooms.intersects_polygon(probe_far)

    def test_intersects_segment(self, two_rooms):
        assert two_rooms.intersects_segment((-1, 1), (3, 1))
        assert not two_rooms.intersects_segment((3, 3), (4, 4))

    def test_all_edges_count(self, two_rooms):
        assert len(two_rooms.all_edges()) == 8

    def test_edge_arrays_shapes(self, two_rooms):
        starts, ends = two_rooms.edge_arrays()
        assert starts.shape == (8, 2)
        assert ends.shape == (8, 2)

    def test_edge_arrays_empty(self):
        starts, ends = MultiPolygon().edge_arrays()
        assert starts.shape == (0, 2)

    def test_vertex_list_round_trip(self, two_rooms):
        lists = two_rooms.to_vertex_lists()
        rebuilt = MultiPolygon.from_vertex_lists(lists)
        assert len(rebuilt) == 2
        assert rebuilt.total_area == pytest.approx(two_rooms.total_area)

    def test_empty_never_intersects(self):
        empty = MultiPolygon()
        assert not empty.contains_point((0, 0))
        assert not empty.intersects_polygon(Polygon.rectangle(0, 0, 1, 1))


class TestContainsPoints:
    def test_vectorised_matches_scalar(self, two_rooms):
        rng = np.random.default_rng(7)
        pts = rng.uniform(-1, 8, size=(200, 2))
        vec = two_rooms.contains_points(pts)
        for i, p in enumerate(pts):
            assert vec[i] == two_rooms.contains_point(tuple(p))

    def test_membership_in_any_polygon(self, two_rooms):
        pts = np.array([(0.5, 0.5), (6.0, 6.0), (3.5, 3.5)])
        np.testing.assert_array_equal(
            two_rooms.contains_points(pts), [True, True, False]
        )

    def test_boundary_flag_passthrough(self, two_rooms):
        corner = np.asarray(
            [two_rooms.polygons[0].vertices[0]], dtype=float
        )
        assert two_rooms.contains_points(corner).all()
        assert not two_rooms.contains_points(
            corner, boundary=False
        ).any()

    def test_empty_multipolygon(self):
        assert not MultiPolygon().contains_points(
            np.zeros((3, 2))
        ).any()
