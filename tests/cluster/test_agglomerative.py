"""Constraint-aware agglomerative clustering."""

import numpy as np
import pytest

from repro.cluster import constrained_agglomerative
from repro.exceptions import ClusteringError


class TestUnconstrained:
    def test_merges_everything(self, rng):
        pts = rng.normal(size=(12, 2))
        clusters = constrained_agglomerative(pts, lambda idx: True)
        assert len(clusters) == 1
        assert sorted(clusters[0].tolist()) == list(range(12))

    def test_no_merges_when_all_rejected(self, rng):
        pts = rng.normal(size=(6, 2))
        clusters = constrained_agglomerative(pts, lambda idx: len(idx) <= 1)
        assert len(clusters) == 6


class TestConstrained:
    def test_spatial_barrier(self):
        # Two groups; constraint forbids mixing them.
        pts = np.array(
            [[0.0, 0.0], [1.0, 0.0], [0.5, 0.5], [10.0, 0.0], [11.0, 0.0]]
        )
        left = {0, 1, 2}

        def same_side(idx):
            members = set(idx.tolist())
            return members <= left or members.isdisjoint(left)

        clusters = constrained_agglomerative(pts, same_side)
        assert len(clusters) == 2
        sides = [set(c.tolist()) for c in clusters]
        assert left in sides
        assert {3, 4} in sides

    def test_max_size_constraint(self, rng):
        pts = rng.normal(size=(9, 2))
        clusters = constrained_agglomerative(pts, lambda idx: len(idx) <= 3)
        assert all(len(c) <= 3 for c in clusters)
        total = sorted(np.concatenate(clusters).tolist())
        assert total == list(range(9))

    def test_closest_pair_merged_first(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 0.0]])
        merged_sets = []

        def record(idx):
            merged_sets.append(sorted(idx.tolist()))
            return True

        constrained_agglomerative(pts, record)
        assert merged_sets[0] == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            constrained_agglomerative(np.empty((0, 2)), lambda idx: True)

    def test_max_merges_cap(self, rng):
        pts = rng.normal(size=(10, 2))
        clusters = constrained_agglomerative(
            pts, lambda idx: True, max_merges=3
        )
        assert len(clusters) == 7
