"""Elbow-method K selection."""

import numpy as np
import pytest

from repro.cluster import elbow_kmeans
from repro.cluster.elbow import _knee_index
from repro.exceptions import ClusteringError


class TestKneeIndex:
    def test_sharp_knee(self):
        ks = [1, 2, 3, 4, 5, 6]
        inertias = [100.0, 40.0, 5.0, 4.0, 3.0, 2.0]
        assert _knee_index(ks, inertias) == 2  # K=3

    def test_linear_curve_no_strong_knee(self):
        ks = [1, 2, 3, 4]
        inertias = [40.0, 30.0, 20.0, 10.0]
        idx = _knee_index(ks, inertias)
        assert 0 <= idx < 4

    def test_single_point(self):
        assert _knee_index([1], [10.0]) == 0


class TestElbowKMeans:
    def test_finds_reasonable_k_for_blobs(self, rng):
        centers = [(0, 0), (12, 0), (0, 12), (12, 12)]
        pts = np.concatenate(
            [rng.normal(c, 0.4, size=(25, 2)) for c in centers]
        )
        result = elbow_kmeans(pts, rng, upper_bound=12)
        assert 3 <= result.best_k <= 6

    def test_upper_bound_respected(self, rng):
        pts = rng.normal(size=(30, 2))
        result = elbow_kmeans(pts, rng, upper_bound=5)
        assert result.best_k <= 5
        assert result.k_values == [1, 2, 3, 4, 5]

    def test_inertias_monotone_trendwise(self, rng):
        pts = rng.normal(size=(40, 2))
        result = elbow_kmeans(pts, rng, upper_bound=8)
        assert result.inertias[0] >= result.inertias[-1]

    def test_empty_data(self, rng):
        with pytest.raises(ClusteringError):
            elbow_kmeans(np.empty((0, 2)), rng)
