"""K-means from scratch."""

import numpy as np
import pytest

from repro.cluster import kmeans
from repro.exceptions import ClusteringError


def _blobs(rng, centers, n_per=30, spread=0.3):
    pts = []
    for c in centers:
        pts.append(rng.normal(c, spread, size=(n_per, len(c))))
    return np.concatenate(pts)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        centers = [(0, 0), (10, 0), (0, 10)]
        x = _blobs(rng, centers)
        result = kmeans(x, 3, rng)
        # Each blob should map to exactly one cluster.
        labels = result.labels
        for b in range(3):
            blob_labels = labels[b * 30 : (b + 1) * 30]
            assert len(set(blob_labels.tolist())) == 1
        assert len(set(labels.tolist())) == 3

    def test_inertia_decreases_with_k(self, rng):
        x = _blobs(rng, [(0, 0), (8, 8)])
        i1 = kmeans(x, 1, rng).inertia
        i2 = kmeans(x, 2, rng).inertia
        i4 = kmeans(x, 4, rng).inertia
        assert i1 > i2 >= i4

    def test_k_equals_n(self, rng):
        x = rng.normal(size=(5, 2))
        result = kmeans(x, 5, rng)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_clusters_partition(self, rng):
        x = rng.normal(size=(40, 3))
        result = kmeans(x, 4, rng)
        all_members = np.concatenate(result.clusters())
        assert sorted(all_members.tolist()) == list(range(40))

    def test_manhattan_metric(self, rng):
        x = _blobs(rng, [(0, 0), (10, 10)])
        result = kmeans(x, 2, rng, metric="manhattan")
        assert result.n_clusters == 2
        assert len(set(result.labels.tolist())) == 2

    def test_duplicate_points(self, rng):
        x = np.zeros((10, 2))
        result = kmeans(x, 2, rng)
        assert result.labels.shape == (10,)

    def test_invalid_k(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((3, 2)), 0, rng)
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((3, 2)), 4, rng)

    def test_invalid_metric(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((3, 2)), 2, rng, metric="cosine")

    def test_empty_data(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(np.empty((0, 2)), 1, rng)
