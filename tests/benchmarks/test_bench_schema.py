"""BENCH_<name>.json schema enforcement in the bench harness.

``benchmarks/conftest.py`` is the only writer of files under
``benchmarks/results/``; these tests pin its contract — every emitted
blob is named ``BENCH_<word>.json``, parses back, and carries the
preset plus at least one numeric metric.
"""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _load_bench_conftest():
    spec = importlib.util.spec_from_file_location(
        "bench_harness", _BENCH_DIR / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def harness():
    return _load_bench_conftest()


GOOD = {"preset": "bench", "rmse": 2.5}


class TestValidatePayload:
    def test_good_payload_passes(self, harness):
        harness.validate_bench_payload("tracking", GOOD)

    @pytest.mark.parametrize(
        "name", ["", "multi floor", "bench.json", "a/b", "ü"]
    )
    def test_bad_names_rejected(self, harness, name):
        with pytest.raises(ValueError, match="must match"):
            harness.validate_bench_payload(name, GOOD)

    @pytest.mark.parametrize("payload", [{}, [], "x", None])
    def test_non_dict_or_empty_rejected(self, harness, payload):
        with pytest.raises(ValueError, match="non-empty dict"):
            harness.validate_bench_payload("x", payload)

    def test_missing_preset_rejected(self, harness):
        with pytest.raises(ValueError, match="preset"):
            harness.validate_bench_payload("x", {"rmse": 2.5})

    def test_non_string_preset_rejected(self, harness):
        with pytest.raises(ValueError, match="preset"):
            harness.validate_bench_payload(
                "x", {"preset": 3, "rmse": 2.5}
            )

    def test_no_numeric_metric_rejected(self, harness):
        with pytest.raises(ValueError, match="numeric"):
            harness.validate_bench_payload(
                "x", {"preset": "bench", "note": "fast!"}
            )

    def test_bool_is_not_a_metric(self, harness):
        with pytest.raises(ValueError, match="numeric"):
            harness.validate_bench_payload(
                "x", {"preset": "bench", "passed": True}
            )

    def test_nested_numerics_count(self, harness):
        harness.validate_bench_payload(
            "x",
            {"preset": "bench", "series": {"rmse": [1.0, 2.0]}},
        )
        harness.validate_bench_payload(
            "x",
            {"preset": "bench", "arr": np.arange(3)},
        )


class TestEmitJson:
    def test_writes_validated_blob(self, harness, tmp_path):
        payload = {
            "preset": "bench",
            "rmse": np.float64(2.5),
            "counts": np.arange(3),
            "by_k": {np.int64(3): 1.0},
        }
        path = harness.emit_json(tmp_path, "sample", payload)
        assert path == tmp_path / "BENCH_sample.json"
        back = json.loads(path.read_text())
        assert back["preset"] == "bench"
        assert back["rmse"] == 2.5
        assert back["counts"] == [0, 1, 2]
        assert back["by_k"] == {"3": 1.0}

    def test_rejects_before_writing(self, harness, tmp_path):
        with pytest.raises(ValueError):
            harness.emit_json(tmp_path, "sample", {"preset": "bench"})
        assert list(tmp_path.iterdir()) == []

    def test_unserializable_payload_rejected(self, harness, tmp_path):
        payload = {"preset": "bench", "n": 1, "obj": object()}
        with pytest.raises(TypeError):
            harness.emit_json(tmp_path, "sample", payload)
        assert list(tmp_path.iterdir()) == []

    def test_emit_is_display_only(self, harness, tmp_path, capsys):
        harness.emit(tmp_path, "Sample bench", "rendered text")
        assert "rendered text" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestRepoResults:
    def test_only_validated_bench_blobs(self):
        """No stale free-form .txt dumps ride along in results/ —
        everything there is a parseable BENCH_<name>.json."""
        results = _BENCH_DIR / "results"
        if not results.exists():
            pytest.skip("no results directory yet")
        for path in results.iterdir():
            assert path.name.startswith("BENCH_"), path
            assert path.suffix == ".json", path
            json.loads(path.read_text())
