"""Shared fixtures: small deterministic datasets and radio maps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_dataset, make_multifloor_dataset
from repro.radiomap import RadioMap


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def kaide_smoke():
    """A small but fully realistic kaide dataset (built once)."""
    return make_dataset("kaide", scale=0.28, seed=5, n_passes=2)


@pytest.fixture(scope="session")
def longhu_smoke():
    """Bluetooth venue dataset for generalisability tests."""
    return make_dataset("longhu", scale=0.28, seed=5, n_passes=2)


@pytest.fixture(scope="session")
def multifloor_smoke():
    """A small two-floor kaide tower (built once)."""
    return make_multifloor_dataset(
        "kaide", n_floors=2, scale=0.28, seed=5, n_passes=2
    )


@pytest.fixture
def tiny_radio_map() -> RadioMap:
    """The paper's Table III radio map (5 records, 5 APs, one path).

    Fingerprints/RPs/timestamps transcribed verbatim from the paper.
    """
    nan = np.nan
    fingerprints = np.array(
        [
            [-70.0, -83.0, -76.0, nan, nan],
            [-71.0, nan, -78.0, nan, nan],
            [nan, nan, -80.0, -68.0, nan],
            [-74.0, -77.0, nan, nan, -81.0],
            [nan, nan, nan, nan, nan],
        ]
    )
    rps = np.array(
        [
            [1.0, 1.0],
            [nan, nan],
            [5.0, 5.0],
            [nan, nan],
            [8.0, 8.0],
        ]
    )
    times = np.array([1.0, 3.0, 8.0, 12.0, 16.0])
    return RadioMap(
        fingerprints=fingerprints,
        rps=rps,
        times=times,
        path_ids=np.zeros(5, dtype=int),
    )
