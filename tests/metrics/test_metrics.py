"""Metrics: DA, APE, imputation errors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    DifferentiationError,
    ImputationError,
    PositioningError,
)
from repro.metrics import (
    average_positioning_error,
    confusion_counts,
    differentiation_accuracy,
    error_cdf,
    error_percentile,
    fingerprint_mae,
    positioning_errors,
    rp_euclidean_error,
)
from repro.radiomap import RemovedValues


class TestDifferentiationAccuracy:
    def test_perfect(self):
        y = np.array([0, 0, -1, -1])
        assert differentiation_accuracy(y, y) == 1.0

    def test_all_wrong(self):
        y_true = np.array([0, -1])
        y_pred = np.array([-1, 0])
        assert differentiation_accuracy(y_true, y_pred) == 0.0

    def test_balanced_under_imbalance(self):
        # 9 MNARs correct, 1 MAR wrong: plain accuracy 0.9, DA 0.5.
        y_true = np.array([-1] * 9 + [0])
        y_pred = np.array([-1] * 10)
        assert differentiation_accuracy(y_true, y_pred) == 0.5

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_invariant_to_class_duplication(self, dup):
        y_true = np.array([0, 0, -1, -1, -1])
        y_pred = np.array([0, -1, -1, -1, 0])
        base = differentiation_accuracy(y_true, y_pred)
        duplicated = differentiation_accuracy(
            np.tile(y_true, dup), np.tile(y_pred, dup)
        )
        assert duplicated == pytest.approx(base)

    def test_rejects_bad_labels(self):
        with pytest.raises(DifferentiationError):
            differentiation_accuracy(np.array([1]), np.array([0]))

    def test_rejects_empty(self):
        with pytest.raises(DifferentiationError):
            differentiation_accuracy(np.array([]), np.array([]))

    def test_confusion_counts(self):
        y_true = np.array([0, 0, -1, -1])
        y_pred = np.array([0, -1, -1, 0])
        c = confusion_counts(y_true, y_pred)
        assert c == {"tp": 1, "fn": 1, "tn": 1, "fp": 1}


class TestPositioningMetrics:
    def test_zero_error(self):
        pts = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert average_positioning_error(pts, pts) == 0.0

    def test_known_errors(self):
        est = np.array([[0.0, 0.0], [0.0, 0.0]])
        tru = np.array([[3.0, 4.0], [0.0, 0.0]])
        np.testing.assert_allclose(
            positioning_errors(est, tru), [5.0, 0.0]
        )
        assert average_positioning_error(est, tru) == 2.5

    def test_percentile(self):
        est = np.zeros((4, 2))
        tru = np.array([[1, 0], [2, 0], [3, 0], [4, 0]], dtype=float)
        assert error_percentile(est, tru, 50) == pytest.approx(2.5)

    def test_cdf_monotone(self):
        est = np.zeros((10, 2))
        tru = np.random.default_rng(0).uniform(0, 5, size=(10, 2))
        grid = np.linspace(0, 10, 21)
        cdf = error_cdf(est, tru, grid)
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(PositioningError):
            positioning_errors(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_nonfinite_estimates_rejected(self):
        est = np.array([[np.nan, 0.0]])
        with pytest.raises(PositioningError):
            positioning_errors(est, np.zeros((1, 2)))


class TestImputationMetrics:
    def _removed(self):
        return RemovedValues(
            rssi_indices=np.array([[0, 1], [1, 0]]),
            rssi_values=np.array([-70.0, -80.0]),
            rp_indices=np.array([0]),
            rp_values=np.array([[3.0, 4.0]]),
        )

    def test_fingerprint_mae(self):
        fp = np.array([[0.0, -72.0], [-77.0, 0.0]])
        mae = fingerprint_mae(fp, self._removed())
        assert mae == pytest.approx((2.0 + 3.0) / 2)

    def test_rp_euclidean(self):
        rps = np.array([[0.0, 0.0], [9.9, 9.9]])
        err = rp_euclidean_error(rps, self._removed())
        assert err == pytest.approx(5.0)

    def test_empty_rejected(self):
        empty = RemovedValues(
            rssi_indices=np.empty((0, 2), dtype=int),
            rssi_values=np.empty(0),
            rp_indices=np.empty(0, dtype=int),
            rp_values=np.empty((0, 2)),
        )
        with pytest.raises(ImputationError):
            fingerprint_mae(np.zeros((1, 1)), empty)
        with pytest.raises(ImputationError):
            rp_euclidean_error(np.zeros((1, 2)), empty)

    def test_null_predictions_rejected(self):
        fp = np.full((2, 2), np.nan)
        with pytest.raises(ImputationError):
            fingerprint_mae(fp, self._removed())
