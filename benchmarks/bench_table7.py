"""Bench: regenerate Table VII (imputation time cost)."""

import numpy as np
from conftest import emit

from repro.experiments import table7


def test_table7(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: table7.run(bench_config), rounds=1, iterations=1
    )
    emit(results_dir, "Table VII", result.rendered)
    for venue, times in result.data.items():
        # Traditional imputers are the cheapest (paper Table VII).
        assert times["LI"] < times["T-BiSIM"]
        assert times["LI"] < times["MF"]
