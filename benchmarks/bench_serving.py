"""Bench: serving throughput — batched query path vs per-query loop,
and cold-start (train + deploy) vs warm-start (load artifact)."""

from conftest import emit, emit_json

from repro.serving import bench as serve_bench


def test_serving_throughput(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: serve_bench.run(bench_config, telemetry=True),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "Serving bench", result.rendered)
    payload = {"preset": bench_config.name, **result.data}
    # Keep the committed results file lean: record the overhead number
    # and the covered stages, not the full export blob.
    tel = payload.pop("telemetry", None)
    if tel is not None:
        payload["telemetry_span_stages"] = tel["span_stages"]
    emit_json(results_dir, "serving", payload)
    # The batched estimator path must dominate the per-query loop at
    # the largest batch size (acceptance: >= 5x at 256).
    assert result.data["estimator_speedup"][256] >= 5.0
    # Batching the service beats calling it one query at a time.
    assert result.data["service_speedup"][256] > 1.0
    # Warm-starting from the shard artifact beats rebuilding the shard
    # from the raw radio map, and serves identical locations.
    assert (
        result.data["warm_start_seconds"]
        < result.data["cold_start_seconds"]
    )
    assert result.data["warm_start_parity"] <= 1e-8
    # The spatial index must beat the brute-force scan at fleet scale
    # while answering within float noise of it (the index's own
    # neighbour selection is exact; the residual is the brute path's
    # matmul-expansion rounding).
    assert result.data["fleet_speedup"] >= 1.5
    assert result.data["fleet_parity"] <= 1e-8
    # The grouped CSR-GEMM kernel must beat the PR-7 per-bucket loop
    # (measured in-run, rounds interleaved) while agreeing
    # bit-for-bit — both kernels share the same exact f64 finish.
    assert result.data["kernel_speedup"] >= 1.5
    assert result.data["kernel_parity"] <= 1e-12
    # Stage attribution for the grouped kernel landed in the data.
    stages = result.data["kernel_stages"]
    for field in (
        "probe_ms",
        "select_ms",
        "bound_ms",
        "gemm_ms",
        "finish_ms",
        "busy_ms",
        "candidates",
        "gemm_rows",
    ):
        assert field in stages
    assert stages["busy_ms"] > 0.0
    # Build-time imputation precompute: serving a BiSIM venue no
    # longer runs the encoder per batch (acceptance: >= 4x the PR-5
    # serve path).
    assert result.data["precompute_speedup"] >= 4.0
    # Telemetry: the instrumented serve path (registry counters +
    # sampled spans) stays within 3% of the uninstrumented one, and
    # the sampled span tree covers every kernel stage.
    overhead = result.data["telemetry_overhead_pct"]
    assert overhead is not None
    assert overhead <= 3.0
    assert {
        "kernel.probe",
        "kernel.select",
        "kernel.bound",
        "kernel.gemm",
        "kernel.finish",
    } <= set(result.data["telemetry"]["span_stages"])
