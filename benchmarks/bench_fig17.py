"""Bench: regenerate Fig. 17 (attention ablation)."""

import numpy as np
from conftest import emit

from repro.experiments import fig17


def test_fig17(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: fig17.run(bench_config, venues=("kaide",)),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "Fig 17", result.rendered)
    rows = result.data["kaide"]
    # The adapted attention should not lose to no-attention by a wide
    # margin (paper: adapted < vanilla < none).
    assert rows["Adapted Bahdanau"] <= rows["No Attention"] * 1.4
