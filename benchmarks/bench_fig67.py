"""Bench: regenerate Figs. 6-7 (abnormal clusters, TopoAC fix)."""

from conftest import emit

from repro.experiments import fig67


def test_fig67(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: fig67.run(bench_config), rounds=1, iterations=1
    )
    emit(results_dir, "Figs 6-7", result.rendered)
    # TopoAC clusters never contain topological entities.
    for venue in result.data.values():
        assert venue["topoac_abnormal"] == 0
