"""Bench: trajectory tracking — motion-model fusion accuracy over
per-scan positioning, and vectorized multi-session stepping.

Two acceptance bars:

* **accuracy** — on the synthetic venue, the tracked trajectory RMSE
  beats independent per-scan positioning by >= 20 % (the
  constant-velocity prior plus the innovation gate suppress the
  per-scan noise and outliers a one-shot query cannot);
* **throughput** — advancing 1k concurrent sessions through one
  ``step_batch`` (one batched positioning query + vectorized Kalman
  kernels) is >= 10x faster than looping ``step`` per session.

Results also land machine-readable in ``BENCH_tracking.json``.
"""

import time
from dataclasses import asdict

import numpy as np
from conftest import emit, emit_json

from repro.core import TopoACDifferentiator
from repro.experiments import get_dataset
from repro.positioning import WKNNEstimator
from repro.serving import PositioningService, scan_pool
from repro.tracking import MotionConfig, TrackingScenario, TrackingService
from repro.tracking import loadgen as tracking_loadgen

N_SESSIONS = 1000


def _accuracy(config):
    scenario = TrackingScenario(devices=12, duration=40.0)
    result = tracking_loadgen.run(config, scenario=scenario)
    return scenario, result


def _speed(config, n_sessions=N_SESSIONS):
    """Loop-of-step vs one step_batch over the same live sessions."""
    dataset = get_dataset("kaide", config)
    service = PositioningService(cache_size=0)
    service.deploy(
        "kaide",
        dataset.radio_map,
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
        estimator=WKNNEstimator(),
    )
    tracking = TrackingService(service, max_sessions=2 * n_sessions)
    rng = np.random.default_rng(29)
    pool = scan_pool(dataset, 1024, rng)

    def draw():
        return pool[rng.integers(0, len(pool), size=n_sessions)]

    sids = tracking.start_batch(
        ["kaide"] * n_sessions, draw(), times=np.zeros(n_sessions)
    )
    scans = draw()
    t0 = time.perf_counter()
    for i, sid in enumerate(sids):
        tracking.step(sid, scans[i], t=1.0)
    loop_seconds = time.perf_counter() - t0

    scans = draw()
    t0 = time.perf_counter()
    tracking.step_batch(
        sids, scans, times=np.full(n_sessions, 2.0)
    )
    batch_seconds = time.perf_counter() - t0
    return loop_seconds, batch_seconds


def test_tracking(benchmark, bench_config, results_dir):
    def _run():
        scenario, result = _accuracy(bench_config)
        loop_s, batch_s = _speed(bench_config)
        return scenario, result, loop_s, batch_s

    scenario, result, loop_s, batch_s = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    speedup = loop_s / batch_s
    rendered = "\n".join(
        [
            result.rendered,
            f"{N_SESSIONS} live sessions, one scan each: "
            f"looped step {1e3 * loop_s:.0f}ms vs step_batch "
            f"{1e3 * batch_s:.1f}ms ({speedup:.0f}x)",
        ]
    )
    emit(results_dir, "Tracking bench", rendered)
    emit_json(
        results_dir,
        "tracking",
        {
            "preset": bench_config.name,
            "scenario": asdict(scenario),
            "motion": asdict(MotionConfig()),
            "raw_rmse": result.data["raw_rmse"],
            "tracked_rmse": result.data["tracked_rmse"],
            "improvement": result.data["improvement"],
            "steps_per_second": result.data["steps_per_second"],
            "sessions": N_SESSIONS,
            "loop_seconds": loop_s,
            "batch_seconds": batch_s,
            "step_batch_speedup": speedup,
        },
    )
    # Acceptance: fusing the motion model beats answering every scan
    # independently by >= 20 % trajectory RMSE...
    assert result.data["improvement"] >= 0.20
    # ...and the vectorized bank advances 1k sessions >= 10x faster
    # than stepping them one by one.
    assert speedup >= 10.0
