"""Bench: multi-floor venues — floor classification plus portal-aware
tracking across an elevator/stairs transition.

Two acceptance bars:

* **floor classification** — scans from walks through a stacked
  two-floor venue (held out from the survey that built the radio
  maps) are routed onto the correct floor >= 95 % of the time (the
  ~18 dB slab attenuation separates the floors' AP signatures);
* **portal handoff** — the tracked trajectory RMSE stays at or below
  independent per-scan positioning *across the portal transition*:
  the elevator jump hands every track to the next floor's bank
  (``floor_switches`` >= one per device) instead of tripping the
  Mahalanobis gate and re-anchoring or dropping the session.

Results also land machine-readable in ``BENCH_multifloor.json``.
"""

from dataclasses import asdict

from conftest import emit, emit_json

from repro.tracking import TrackingScenario
from repro.tracking import loadgen as tracking_loadgen

N_FLOORS = 2


def test_multifloor(benchmark, bench_config, results_dir):
    scenario = TrackingScenario(
        name="multifloor", devices=12, duration=90.0
    )

    def _run():
        return tracking_loadgen.run_multifloor(
            bench_config, n_floors=N_FLOORS, scenario=scenario
        )

    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(results_dir, "Multi-floor bench", result.rendered)
    emit_json(
        results_dir,
        "multifloor",
        {
            "preset": bench_config.name,
            "scenario": asdict(scenario),
            "n_floors": result.data["n_floors"],
            "devices": result.data["devices"],
            "raw_rmse": result.data["raw_rmse"],
            "tracked_rmse": result.data["tracked_rmse"],
            "improvement": result.data["improvement"],
            "floor_accuracy": result.data["floor_accuracy"],
            "floor_switches": result.data["floor_switches"],
            "floor_rejections": result.data["floor_rejections"],
            "floor_reanchors": result.data["floor_reanchors"],
            "steps_per_second": result.data["steps_per_second"],
        },
    )
    # Acceptance: held-out walk scans land on the right floor...
    assert result.data["floor_accuracy"] >= 0.95
    # ...fusion never does worse than answering each scan alone, even
    # with a portal transition mid-trajectory...
    assert result.data["tracked_rmse"] <= result.data["raw_rmse"]
    # ...and every device's elevator jump is an explicit portal
    # handoff, not a gate failure that drops or re-anchors the track.
    assert result.data["floor_switches"] >= result.data["devices"]
    assert result.data["floor_reanchors"] == 0
