"""Bench: regenerate the Section V-B MAR-share text result."""

from conftest import emit

from repro.experiments import marshare


def test_marshare(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: marshare.run(bench_config), rounds=1, iterations=1
    )
    emit(results_dir, "Section V-B MAR share", result.rendered)
    for venue in result.data.values():
        assert 0.0 < venue["mar_share"] < 0.6
