"""Bench: regenerate Fig. 13 (threshold eta vs APE)."""

import numpy as np
from conftest import emit

from repro.experiments import fig13


def test_fig13(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: fig13.run(
            bench_config,
            venues=("kaide",),
            etas=(0.0, 0.1, 0.3),
        ),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "Fig 13", result.rendered)
    # At eta = 0 every clustering differentiator collapses to MAR-only
    # by construction (all fractions > 0 count as MAR).
    series = result.data["kaide"]
    assert np.isfinite(series["TopoAC"]).all()
