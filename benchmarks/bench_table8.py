"""Bench: regenerate Table VIII (Bluetooth venue, Longhu)."""

import numpy as np
from conftest import emit

from repro.experiments import table8


def test_table8(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: table8.run(bench_config), rounds=1, iterations=1
    )
    emit(results_dir, "Table VIII", result.rendered)
    rows = result.data["ape"]["longhu"]
    bisim_mean = np.mean(
        [rows["T-BiSIM"]["WKNN"], rows["D-BiSIM"]["WKNN"]]
    )
    field_mean = np.mean(
        [rows[k]["WKNN"] for k in ("CD", "LI", "SL", "MICE", "MF")]
    )
    assert bisim_mean < field_mean
