"""Bench: regenerate Fig. 14 (beta vs fingerprint MAE)."""

import numpy as np
from conftest import emit

from repro.experiments import fig14


def test_fig14(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: fig14.run(
            bench_config,
            venues=("kaide",),
            betas=(0.10, 0.30, 0.50),
        ),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "Fig 14", result.rendered)
    series = result.data["kaide"]
    # MAE grows (weakly) with beta for autocorrelation methods.
    assert series["MICE"][-1] >= series["MICE"][0] * 0.8
    # BiSIM variants stay competitive within the neural family.  (Our
    # regularised ALS makes MF stronger than the paper's — documented
    # as Deviation 2 in EXPERIMENTS.md — so the cross-family gap is
    # not asserted.)
    neural_final = np.mean(
        [series[k][-1] for k in ("D-BiSIM", "SSGAN", "BRITS")]
    )
    assert series["T-BiSIM"][-1] <= 1.5 * neural_final
