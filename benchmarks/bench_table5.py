"""Bench: regenerate Table V (venue & radio-map statistics)."""

from conftest import emit

from repro.experiments import table5


def test_table5(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: table5.run(bench_config), rounds=1, iterations=1
    )
    emit(results_dir, "Table V", result.rendered)
    # Sparsity must land in the paper's 85-94% band (Table V).
    for venue, stats in result.data.items():
        assert stats.missing_rssi_rate > 0.80
