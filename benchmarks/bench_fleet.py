"""Bench: city-scale shard fleet — multi-process serving with lazy
mmap loading and memory-budgeted LRU eviction vs one process.

Acceptance bars (asserted below, persisted to BENCH_fleet.json):

* 4-worker fleet >= 2.5x single-process throughput on a 500-venue
  Zipf-skewed stream;
* the memory budget holds under half the pool resident, so the lazy
  load / fast reload / eviction counters are all exercised (nonzero)
  on both sides;
* every fleet answer is bit-identical to the single-process answer,
  with zero routing errors;
* a 2-worker fleet also beats the baseline (scaling sanity check).
"""

from conftest import emit, emit_json

from repro.serving import fleetbench

N_VENUES = 500


def _summary(data):
    return {
        "workers": data["workers"],
        "speedup": data["speedup"],
        "throughput": data["fleet"]["throughput"],
        "parity_exact": data["parity_exact"],
        "errors": data["errors"],
    }


def test_fleet_throughput(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: fleetbench.run(
            bench_config, n_venues=N_VENUES, workers=4
        ),
        rounds=1,
        iterations=1,
    )
    data = result.data
    # Same pool, same stream, same budget — half the workers.
    two = fleetbench.run(
        bench_config,
        n_venues=N_VENUES,
        workers=2,
        memory_budget_mb=data["memory_budget_mb"],
    ).data

    emit(results_dir, "Fleet bench", result.rendered)
    emit_json(
        results_dir,
        "fleet",
        {
            "preset": bench_config.name,
            **data,
            "scaling": [_summary(two), _summary(data)],
        },
    )

    # Throughput: the 4-worker fleet must dominate one process on the
    # 500-venue Zipf stream, and 2 workers must already beat it.
    assert data["speedup"] >= 2.5
    assert two["speedup"] > 1.0

    # Correctness: batched multi-process serving is bit-identical to
    # the per-request single-process path, with no routing errors.
    assert data["parity_exact"] is True
    assert data["errors"] == 0
    assert two["parity_exact"] is True
    assert two["errors"] == 0

    # Memory budget: under half the pool resident on either side, so
    # the stream exercises lazy loads, mmap fast reloads and LRU
    # evictions rather than degenerating into an everything-fits run.
    for side in (data["baseline"], data["fleet"]):
        assert side["resident_venues"] < N_VENUES / 2
        assert side["lazy_loads"] > 0
        assert side["fast_reloads"] > 0
        assert side["evictions"] > 0

    # Every worker took part (hash partitioning spread the pool).
    assert all(
        w["requests"] > 0 for w in data["fleet"]["per_worker"]
    )
    assert data["fleet"]["respawns"] == 0

    # Kernel attribution is reported per worker and fleet-wide (the
    # 500-venue pool's shards serve brute force below the index
    # threshold, so the value may legitimately be zero — the field
    # must simply exist and stay a sane fraction).
    assert 0.0 <= data["fleet"]["kernel_utilization"] <= 1.0
    for w in data["fleet"]["per_worker"]:
        assert 0.0 <= w["kernel_utilization"] <= 1.0
