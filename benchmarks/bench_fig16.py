"""Bench: regenerate Fig. 16 (RP density vs APE)."""

import numpy as np
from conftest import emit

from repro.experiments import fig16


def test_fig16(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: fig16.run(
            bench_config,
            venues=("kaide",),
            densities=(0.6, 0.8, 1.0),
        ),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "Fig 16", result.rendered)
    series = result.data["kaide"]
    # Denser RPs should not hurt noticeably: full density within 1.5x
    # of the sparsest setting (paper: APE improves with density).
    assert series[-1] <= series[0] * 1.5
