"""Bench: regenerate Fig. 5 (AP-profile cluster locality)."""

from conftest import emit

from repro.experiments import fig5


def test_fig5(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: fig5.run(bench_config), rounds=1, iterations=1
    )
    emit(results_dir, "Fig 5", result.rendered)
    # Same-cluster RPs are spatially closer than a random partition.
    for venue in result.data.values():
        assert venue["ratio"] < 0.9
