"""Bench: extra ablation — bidirectionality and cross loss."""

import numpy as np
from conftest import emit

from repro.experiments import ablation_bidir


def test_ablation_bidir(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: ablation_bidir.run(bench_config, venues=("kaide",)),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "Ablation bidirectional", result.rendered)
    rows = result.data["kaide"]
    assert all(np.isfinite(v) for v in rows.values())
