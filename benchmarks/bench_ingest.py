"""Bench: streaming ingestion — delta hot-apply vs the batch path.

Picking up a fresh survey drop the batch way means rebuilding the
venue shard from the merged radio map, saving the bundle, and
reloading it into the service; the streaming way folds the drop into
a delta and hot-applies it.  Acceptance: the delta path is >= 5x
faster (it re-differentiates only the dirty paths and refits the
estimator, instead of re-running the whole offline pipeline).
"""

import time

import numpy as np
from conftest import emit, emit_json

from repro.core import TopoACDifferentiator
from repro.experiments import get_dataset
from repro.ingest import StreamIngestor, simulate_new_survey
from repro.serving import PositioningService, VenueShard, scan_pool


def _run(config, tmp_path):
    dataset = get_dataset("kaide", config)
    differentiator = TopoACDifferentiator(
        entities=dataset.venue.plan.entities
    )
    service = PositioningService()
    service.deploy("kaide", dataset.radio_map, differentiator)
    pool = np.round(
        scan_pool(dataset, 256, np.random.default_rng(17))
    )
    service.query_batch(["kaide"] * len(pool), pool)

    # One fresh survey path per apply round.
    tables = simulate_new_survey(dataset, n_passes=1, seed=23)
    ingestor = StreamIngestor(dataset.radio_map.n_aps)
    ingestor.ingest_table(tables[0])
    delta = ingestor.drain()

    t0 = time.perf_counter()
    report = service.apply_delta("kaide", delta)
    apply_seconds = time.perf_counter() - t0

    # The batch alternative over the *same* merged map: rebuild the
    # shard offline, write the bundle, hot-reload it.
    merged = service.shard("kaide").radio_map
    artifact = tmp_path / "kaide-rebuilt.npz"
    t0 = time.perf_counter()
    rebuilt = VenueShard.build(
        "kaide",
        merged,
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
    )
    rebuilt.save(artifact)
    service.reload("kaide", artifact)
    rebuild_seconds = time.perf_counter() - t0

    speedup = rebuild_seconds / apply_seconds
    rendered = "\n".join(
        [
            f"base map: {dataset.radio_map.n_records} rows, delta: "
            f"{delta.n_rows} rows over {delta.n_paths} path(s)",
            f"delta hot-apply: {1e3 * apply_seconds:.1f}ms "
            f"(cache: {report.invalidated} invalidated, "
            f"{report.kept} kept)",
            f"batch rebuild + save + reload: "
            f"{1e3 * rebuild_seconds:.1f}ms",
            f"speedup: {speedup:.1f}x",
        ]
    )
    return {
        "rendered": rendered,
        "apply_seconds": apply_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": speedup,
    }


def test_delta_apply_vs_rebuild(
    benchmark, bench_config, results_dir, tmp_path
):
    result = benchmark.pedantic(
        lambda: _run(bench_config, tmp_path), rounds=1, iterations=1
    )
    emit(results_dir, "Ingest bench", result["rendered"])
    emit_json(
        results_dir,
        "ingest",
        {
            "preset": bench_config.name,
            "apply_seconds": result["apply_seconds"],
            "rebuild_seconds": result["rebuild_seconds"],
            "speedup": result["speedup"],
        },
    )
    # Acceptance: picking up new records via a delta beats the batch
    # rebuild-the-artifact-and-reload path by >= 5x.
    assert result["speedup"] >= 5.0
