"""Benchmark-suite configuration.

Each bench module regenerates one of the paper's tables/figures: it
runs the corresponding :mod:`repro.experiments` module under a preset
(default ``bench`` — big enough for the paper's orderings to
emerge, small enough for a laptop; set ``REPRO_BENCH_PRESET`` to
``smoke``/``quick``/``full`` to rescale) and prints the rendered
rows/series.

The only files a bench persists are the machine-readable
``BENCH_<name>.json`` blobs written by :func:`emit_json` into
``benchmarks/results/`` — schema-checked before writing, so a bench
cannot land a blob CI dashboards and cross-PR diffs choke on.
:func:`emit` is display-only.
"""

from __future__ import annotations

import json
import numbers
import os
import re
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import PRESETS

RESULTS_DIR = Path(__file__).parent / "results"

#: BENCH_<name>.json names: one word, no spaces/dots to escape.
_BENCH_NAME = re.compile(r"^[A-Za-z0-9_]+$")


@pytest.fixture(scope="session")
def bench_config():
    name = os.environ.get("REPRO_BENCH_PRESET", "bench")
    return PRESETS[name]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, rendered: str) -> None:
    """Print a result block (display only — nothing is persisted).

    The ``results_dir`` parameter is kept so every bench call site
    reads the same; the persisted artifact is :func:`emit_json`'s
    validated ``BENCH_<name>.json``, never free-form text.
    """
    del results_dir
    print(f"\n== {name} ==\n{rendered}\n")


def _jsonable(obj):
    """json.dump fallback for the numpy scalars/arrays bench data
    carries (and for dict keys, which json requires to be strings)."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def _stringify_keys(obj):
    if isinstance(obj, dict):
        return {str(k): _stringify_keys(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_stringify_keys(v) for v in obj]
    return obj


def _has_numeric_leaf(obj) -> bool:
    if isinstance(obj, bool):
        return False
    if isinstance(obj, (numbers.Real, np.integer, np.floating)):
        return True
    if isinstance(obj, np.ndarray):
        return obj.size > 0 and np.issubdtype(obj.dtype, np.number)
    if isinstance(obj, dict):
        return any(_has_numeric_leaf(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return any(_has_numeric_leaf(v) for v in obj)
    return False


def validate_bench_payload(name: str, payload) -> None:
    """The ``BENCH_<name>.json`` schema every bench must satisfy.

    A blob is a dict carrying the ``preset`` it ran under (strings —
    results are meaningless without knowing the scale) and at least
    one numeric metric; the name must be a single
    ``[A-Za-z0-9_]`` word so ``BENCH_*.json`` globs, dashboards and
    workflow-artifact uploads never meet a surprising filename.
    """
    if not _BENCH_NAME.match(name):
        raise ValueError(
            f"bench name {name!r} must match {_BENCH_NAME.pattern}"
        )
    if not isinstance(payload, dict) or not payload:
        raise ValueError(
            f"BENCH_{name}: payload must be a non-empty dict"
        )
    preset = payload.get("preset")
    if not isinstance(preset, str) or not preset:
        raise ValueError(
            f"BENCH_{name}: payload needs a 'preset' string "
            "(which preset produced these numbers?)"
        )
    if not _has_numeric_leaf(payload):
        raise ValueError(
            f"BENCH_{name}: payload carries no numeric metric"
        )


def emit_json(results_dir: Path, name: str, payload: dict) -> Path:
    """Validate and write ``BENCH_<name>.json``.

    The machine-readable record of a bench run: every bench persists
    its timings/speedups plus the preset it ran under, so the perf
    trajectory is diffable across PRs (``git log -p
    benchmarks/results/BENCH_*.json`` or any dashboard).  The payload
    is schema-checked first (:func:`validate_bench_payload`) and the
    final JSON round-trip-parsed, so nothing unreadable can land in
    ``benchmarks/results/``.
    """
    validate_bench_payload(name, payload)
    text = json.dumps(
        _stringify_keys(payload),
        indent=2,
        sort_keys=True,
        default=_jsonable,
    )
    json.loads(text)  # every written blob must parse back
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(text + "\n")
    return path
