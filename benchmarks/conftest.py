"""Benchmark-suite configuration.

Each bench module regenerates one of the paper's tables/figures: it
runs the corresponding :mod:`repro.experiments` module under a preset
(default ``bench`` — big enough for the paper's orderings to
emerge, small enough for a laptop; set ``REPRO_BENCH_PRESET`` to
``smoke``/``quick``/``full`` to rescale), prints the
rendered rows/series, and writes them to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import PRESETS

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_config():
    name = os.environ.get("REPRO_BENCH_PRESET", "bench")
    return PRESETS[name]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, rendered: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    text = f"== {name} ==\n{rendered}\n"
    print("\n" + text)
    (results_dir / f"{name.replace(' ', '_').lower()}.txt").write_text(
        text
    )


def _jsonable(obj):
    """json.dump fallback for the numpy scalars/arrays bench data
    carries (and for dict keys, which json requires to be strings)."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def _stringify_keys(obj):
    if isinstance(obj, dict):
        return {str(k): _stringify_keys(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_stringify_keys(v) for v in obj]
    return obj


def emit_json(results_dir: Path, name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` next to the human-readable output.

    The machine-readable twin of :func:`emit`: every bench persists
    its timings/speedups plus the preset it ran under, so the perf
    trajectory is diffable across PRs (``git log -p
    benchmarks/results/BENCH_*.json`` or any dashboard).
    """
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(
            _stringify_keys(payload),
            indent=2,
            sort_keys=True,
            default=_jsonable,
        )
        + "\n"
    )
    return path
