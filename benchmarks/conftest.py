"""Benchmark-suite configuration.

Each bench module regenerates one of the paper's tables/figures: it
runs the corresponding :mod:`repro.experiments` module under a preset
(default ``bench`` — big enough for the paper's orderings to
emerge, small enough for a laptop; set ``REPRO_BENCH_PRESET`` to
``smoke``/``quick``/``full`` to rescale), prints the
rendered rows/series, and writes them to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import PRESETS

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_config():
    name = os.environ.get("REPRO_BENCH_PRESET", "bench")
    return PRESETS[name]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, rendered: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    text = f"== {name} ==\n{rendered}\n"
    print("\n" + text)
    (results_dir / f"{name.replace(' ', '_').lower()}.txt").write_text(
        text
    )
