"""Bench: regenerate Table VI (overall APE, 9 imputers x 3 estimators).

Shape assertions follow the paper: *-BiSIM leads, neural imputers beat
the traditional family on average.
"""

import numpy as np
from conftest import emit

from repro.experiments import table6


def test_table6(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: table6.run(bench_config), rounds=1, iterations=1
    )
    emit(results_dir, "Table VI", result.rendered)
    for venue, rows in result.data["ape"].items():
        best = min(rows, key=lambda k: rows[k]["WKNN"])
        # The winner is a neural imputer (paper: T-BiSIM / D-BiSIM).
        assert best in ("T-BiSIM", "D-BiSIM", "BRITS", "SSGAN"), (
            f"{venue}: unexpected winner {best}"
        )
        bisim_mean = np.mean(
            [rows["T-BiSIM"]["WKNN"], rows["D-BiSIM"]["WKNN"]]
        )
        trad_mean = np.mean(
            [rows[k]["WKNN"] for k in ("CD", "LI", "SL")]
        )
        auto_mean = np.mean(
            [rows[k]["WKNN"] for k in ("MICE", "MF")]
        )
        assert bisim_mean < trad_mean
        assert bisim_mean < auto_mean
