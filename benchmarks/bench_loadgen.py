"""Bench: concurrent serving — micro-batched multi-threaded traffic
vs the single-caller batch-256 path, with latency percentiles."""

from conftest import emit

from repro.serving import loadgen


def test_concurrent_load(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: loadgen.run(bench_config), rounds=1, iterations=1
    )
    emit(results_dir, "Load test", result.rendered)
    data = result.data
    scenarios = data["scenarios"]
    for name, stats in scenarios.items():
        assert stats["errors"] == 0, name
        assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
    # Acceptance: 8 worker threads + micro-batching keep up with the
    # single-caller batched path at its optimal batch size.
    assert data["threads"] == 8
    assert data["default_vs_baseline"] >= 1.0
    # Device re-scans (duplicate rate 0.5 in the default scenario)
    # are answered from the quantized-fingerprint cache.
    assert scenarios["default"]["hit_rate"] > 0
    assert scenarios["rescan-heavy"]["hit_rate"] > 0
