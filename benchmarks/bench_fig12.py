"""Bench: regenerate Fig. 12 (removal ratio alpha vs APE)."""

import numpy as np
from conftest import emit

from repro.experiments import fig12


def test_fig12(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: fig12.run(
            bench_config,
            venues=("kaide",),
            alphas=(0.0, 0.10, 0.20),
        ),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "Fig 12", result.rendered)
    series = result.data["kaide"]
    # Differentiators beat MNAR-only on average across the sweep.
    topo = np.mean(series["TopoAC"])
    mnar_only = np.mean(series["MNAR-only"])
    assert topo <= mnar_only * 1.25
