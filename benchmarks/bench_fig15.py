"""Bench: regenerate Fig. 15 (beta vs RP Euclidean distance)."""

import numpy as np
from conftest import emit

from repro.experiments import fig15


def test_fig15(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: fig15.run(
            bench_config,
            venues=("kaide",),
            betas=(0.10, 0.30, 0.50),
        ),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "Fig 15", result.rendered)
    series = result.data["kaide"]
    for name, vals in series.items():
        assert np.isfinite(vals).all(), name
