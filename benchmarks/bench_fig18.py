"""Bench: regenerate Fig. 18 (time-lag ablation)."""

import numpy as np
from conftest import emit

from repro.experiments import fig18


def test_fig18(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: fig18.run(bench_config, venues=("kaide",)),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "Fig 18", result.rendered)
    rows = result.data["kaide"]
    # Paper's design (encoder-only) competitive with the best variant.
    best = min(rows.values())
    assert rows["Time-lag in Enc."] <= best * 1.5
