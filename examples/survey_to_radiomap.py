#!/usr/bin/env python3
"""Walking-survey scenario: from raw records to a cleaned radio map.

Demonstrates the data substrate end to end, mirroring the paper's
Section II-B: plan survey paths over a mall floor plan, simulate a
surveyor with realistic kinematics, inspect the raw record table, run
the two-step merge, and export the resulting radio map to CSV/NPZ.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.radio import calibrate_detection_floor, make_channel
from repro.radiomap import (
    compute_stats,
    create_radio_map,
    export_csv,
    load_radio_map,
    save_radio_map,
)
from repro.survey import RPRecord, SurveyConfig, simulate_survey
from repro.venue import build_venue


def main() -> None:
    venue = build_venue("wanda", scale=0.4, seed=11)
    print(venue.describe())
    channel = make_channel(
        venue.plan, venue.access_points, venue.channel_kind
    )
    # Calibrate device sensitivity so the scaled venue reproduces the
    # paper's sparsity regime (Table V: ~93% missing for Wanda).
    channel = calibrate_detection_floor(
        channel, venue.reference_points, 0.07
    )

    print("\nSimulating walking survey (2 passes) ...")
    rng = np.random.default_rng(1)
    tables = simulate_survey(
        venue,
        channel,
        SurveyConfig(n_passes=2, pause_probability=0.4),
        rng,
    )
    print(f"  {len(tables)} survey paths")

    # Peek at one walking-survey record table (the paper's Table II).
    table = max(tables, key=len)
    print(f"\nPath {table.path_id}: {len(table)} records, "
          f"{table.duration():.0f}s duration. First few records:")
    for record in table.records[:6]:
        if isinstance(record, RPRecord):
            print(f"  t={record.time:6.1f}s  RP    {record.location}")
        else:
            shown = dict(list(record.readings.items())[:3])
            print(
                f"  t={record.time:6.1f}s  RSSI  {len(record.readings)}"
                f" APs heard, e.g. {shown}"
            )

    print("\nCreating the radio map (Section II-B merge, eps=1s) ...")
    radio_map = create_radio_map(tables, epsilon=1.0)
    print(f"  {radio_map.describe()}")
    print("  " + compute_stats(venue, radio_map).as_row())

    with tempfile.TemporaryDirectory() as tmp:
        npz = Path(tmp) / "wanda.npz"
        csv = Path(tmp) / "wanda.csv"
        save_radio_map(radio_map, npz)
        export_csv(radio_map, csv)
        reloaded = load_radio_map(npz)
        print(
            f"\nPersistence round trip: saved {npz.stat().st_size} B npz"
            f" + {csv.stat().st_size} B csv; reloaded "
            f"{reloaded.n_records} records intact"
        )


if __name__ == "__main__":
    main()
