#!/usr/bin/env python3
"""Compare missing-RSSI differentiators against channel ground truth.

Real datasets cannot score a differentiator directly — nobody knows
which nulls were random losses.  The synthetic channel does know, so
this example scores TopoAC, DasaKM, ElbowKM and the two
no-differentiation baselines with the paper's DA metric (balanced
accuracy over MAR/MNAR) against the simulator's true missing types.
"""

import numpy as np

from repro.core import (
    DasaKMDifferentiator,
    ElbowKMDifferentiator,
    MAROnlyDifferentiator,
    MNAROnlyDifferentiator,
    TopoACDifferentiator,
)
from repro.datasets import make_dataset
from repro.metrics import confusion_counts, differentiation_accuracy


def main() -> None:
    dataset = make_dataset("kaide", scale=0.4, seed=7, n_passes=3)
    rm = dataset.radio_map
    truth = rm.truth.missing_type
    print(rm.describe())
    true_missing = truth != 1
    print(
        f"true MAR share of missing: "
        f"{100 * (truth[true_missing] == 0).mean():.2f}%\n"
    )

    differentiators = [
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
        DasaKMDifferentiator(upper_bound=10, proportions=(1, 2, 4)),
        ElbowKMDifferentiator(upper_bound=15),
        MAROnlyDifferentiator(),
        MNAROnlyDifferentiator(),
    ]
    print(f"{'method':<10} {'DA':>6} {'tp':>5} {'fn':>5} {'tn':>6} {'fp':>5}")
    for diff in differentiators:
        mask = diff.differentiate(rm)
        sel = true_missing & (mask != 1)
        da = differentiation_accuracy(truth[sel], mask[sel])
        c = confusion_counts(truth[sel], mask[sel])
        print(
            f"{diff.name:<10} {da:6.3f} {c['tp']:5d} {c['fn']:5d} "
            f"{c['tn']:6d} {c['fp']:5d}"
        )
    print(
        "\n(MAR-only / MNAR-only score 0.5 by construction: they get "
        "one class perfectly and the other not at all.)"
    )


if __name__ == "__main__":
    main()
