#!/usr/bin/env python3
"""Online fingerprint imputation + venue visualisation.

Exercises two extensions beyond the paper's evaluation:

* the Section VII future-work item — imputing a *single online*
  fingerprint in milliseconds with a trained BiSIM encoder
  (`repro.bisim.OnlineImputer`);
* the ASCII venue renderer (`repro.viz`), reproducing the paper's
  Fig. 3 observability scatter as text.
"""

import time

import numpy as np

from repro.bisim import BiSIMConfig, OnlineImputer
from repro.core import TopoACDifferentiator
from repro.datasets import make_dataset
from repro.imputers import fill_mnars
from repro.viz import render_observability


def main() -> None:
    dataset = make_dataset("kaide", scale=0.35, seed=7, n_passes=3)
    rm = dataset.radio_map
    print(rm.describe())

    # --- Fig. 3-style observability map for one AP.
    ap = dataset.venue.access_points[0]
    rps = dataset.venue.reference_points
    observable = dataset.channel.observable_mask(rps)[:, ap.ap_id]
    print(
        f"\nObservability of AP {ap.ap_id} "
        f"(at {ap.position[0]:.1f}, {ap.position[1]:.1f}) — "
        f"O observed / x missed / # room:"
    )
    print(render_observability(dataset.venue.plan, rps, observable))

    # --- Train once, impute online scans forever.
    print("\nTraining BiSIM for online imputation ...")
    mask = TopoACDifferentiator(
        entities=dataset.venue.plan.entities
    ).differentiate(rm)
    filled, amended = fill_mnars(rm, mask)
    online = OnlineImputer.fit(
        filled, amended, BiSIMConfig(hidden_size=32, epochs=25)
    )

    rng = np.random.default_rng(3)
    query_pos = rps[len(rps) // 2]
    meas = dataset.channel.measure(query_pos, rng)
    n_missing = int(np.isnan(meas.rssi).sum())

    start = time.perf_counter()
    completed = online.impute_fingerprint(meas.rssi)
    ms = 1000 * (time.perf_counter() - start)
    print(
        f"\nOnline scan at RP {query_pos}: {n_missing}/{meas.rssi.size} "
        f"readings missing; imputed in {ms:.1f} ms"
    )

    # Compare imputed MARs against the channel's noise-free truth.
    truth = dataset.channel.ground_truth_fingerprint(query_pos)
    mars = (meas.missing_type == 0) & np.isfinite(truth)
    if mars.any():
        mae = np.abs(completed[mars] - truth[mars]).mean()
        print(
            f"MAE on the {int(mars.sum())} truly-MAR dimensions: "
            f"{mae:.1f} dBm (channel shadowing sigma is "
            f"{dataset.channel.propagation.shadowing_sigma_db} dB)"
        )


if __name__ == "__main__":
    main()
