#!/usr/bin/env python3
"""Streaming ingestion demo: live radio-map maintenance.

The batch pipeline (survey → ``create_radio_map`` → train → serve)
freezes the data plane at survey time.  This demo runs the streaming
path instead:

1. deploy a venue from its initial survey;
2. fold two fresh crowdsourced survey drops through a
   :class:`~repro.ingest.StreamIngestor`, publishing each as a
   lineage-chained delta artifact;
3. verify the chain against the base snapshot, then hot-apply each
   delta to the live deployment — queries keep flowing, only the
   affected cache keys are invalidated, and the shard's radio map
   grows in place.

Run: ``PYTHONPATH=src python examples/streaming_ingest.py``
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import TopoACDifferentiator
from repro.datasets import make_dataset
from repro.ingest import (
    StreamIngestor,
    load_delta,
    simulate_new_survey,
    verify_chain,
)
from repro.artifacts import read_manifest
from repro.serving import PositioningService, scan_pool


def main() -> None:
    dataset = make_dataset("kaide", scale=0.3, seed=11, n_passes=2)
    service = PositioningService(cache_size=2048)
    service.deploy(
        "kaide",
        dataset.radio_map,
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
    )
    print(f"deployed: {dataset.radio_map.describe()}")

    # Warm the cache with some traffic.
    rng = np.random.default_rng(7)
    pool = np.round(scan_pool(dataset, 96, rng))
    service.query_batch(["kaide"] * len(pool), pool)
    print(f"warmed cache with {len(pool)} scans")

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # In a real deployment the chain anchors on the trained shard
        # bundle's content hash (see `python -m repro ingest --base`);
        # here the first delta starts an unanchored chain.
        ingestor = StreamIngestor(dataset.radio_map.n_aps)

        delta_paths = []
        next_path_id = int(dataset.radio_map.path_ids.max()) + 1
        for round_ in range(2):
            # Each drop gets fresh path ids past everything ingested
            # so far — reusing ids would fold different walks into
            # the same paths and replace them on apply.
            tables = simulate_new_survey(
                dataset,
                n_passes=1,
                seed=100 + round_,
                start_path_id=next_path_id,
            )
            next_path_id += len(tables)
            for table in tables:
                # Stream the drop record by record, as a gateway would.
                ingestor.ingest(table.path_id, table.records)
            path = tmp / f"kaide-delta-{round_}.npz"
            published = ingestor.publish(path)
            delta_paths.append(path)
            print(
                f"published {path.name}: "
                f"{published.delta.describe()} "
                f"(sequence {published.sequence})"
            )

        print(f"ingestor: {ingestor.stats.render()}")

        # Chain verification: each manifest names its parent's hash.
        first = read_manifest(delta_paths[0])
        print(
            "chain verified:",
            len(verify_chain(delta_paths[0], delta_paths[1:])) + 1,
            "links from",
            str(first["content_hash"])[:12],
        )

        # Hot-apply each delta to the live deployment.
        for path in delta_paths:
            delta, _ = load_delta(path)
            report = service.apply_delta("kaide", delta)
            print(report.describe())

    after = service.query_batch(["kaide"] * len(pool), pool)
    direct = service.shard("kaide").locate(pool)
    # Kept cache entries are guaranteed within the targeted-
    # invalidation tolerance of a fresh compute; anything further off
    # would have been invalidated.
    assert np.allclose(after, direct, rtol=0.0, atol=1e-9), (
        "stale cache answer!"
    )
    print(f"post-apply map: {service.shard('kaide').radio_map.describe()}")
    print(service.stats.render())


if __name__ == "__main__":
    main()
