#!/usr/bin/env python3
"""Serving API demo: one service, two venues, mixed query batches.

Builds a :class:`repro.serving.PositioningService` with two deployed
venue shards — kaide on the full BiSIM pipeline (differentiate →
train → batched online imputation) and longhu on the instant
mean-fill path — then answers a batch of interleaved raw device scans
in a single ``query_batch`` call and prints the cache/throughput
stats the service keeps for operations.
"""

import numpy as np

from repro.bisim import BiSIMConfig
from repro.core import TopoACDifferentiator
from repro.datasets import make_dataset
from repro.serving import PositioningService


def main() -> None:
    service = PositioningService(cache_size=1024, cache_quantum=1.0)
    datasets = {}
    for name, bisim in (("kaide", True), ("longhu", False)):
        ds = make_dataset(name, scale=0.3, seed=7, n_passes=2)
        datasets[name] = ds
        print(f"deploying {name}: {ds.radio_map.describe()}")
        service.deploy(
            name,
            ds.radio_map,
            TopoACDifferentiator(entities=ds.venue.plan.entities),
            bisim_config=(
                BiSIMConfig(hidden_size=24, epochs=10) if bisim else None
            ),
        )
    print(f"venues online: {service.venues}\n")

    # A mixed batch of raw online scans: alternating venues, NaN where
    # the device missed an AP — exactly what production traffic looks
    # like.
    rng = np.random.default_rng(11)
    venues, scans, truths = [], [], []
    for i in range(8):
        name = "kaide" if i % 2 == 0 else "longhu"
        ds = datasets[name]
        pos = ds.venue.reference_points[
            (i * 7) % len(ds.venue.reference_points)
        ]
        venues.append(name)
        scans.append(ds.channel.measure(pos, rng).rssi)
        truths.append(pos)

    locations = service.query_batch(venues, scans)
    for name, estimate, truth in zip(venues, locations, truths):
        err = float(np.linalg.norm(estimate - truth))
        print(
            f"{name:>7}: estimated ({estimate[0]:6.1f}, "
            f"{estimate[1]:6.1f})  true ({truth[0]:6.1f}, "
            f"{truth[1]:6.1f})  error {err:.1f} m"
        )

    # Re-serving the same batch hits the LRU cache.
    service.query_batch(venues, scans)
    print("\nservice stats:")
    print(service.stats.render())


if __name__ == "__main__":
    main()
