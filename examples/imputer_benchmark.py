#!/usr/bin/env python3
"""Benchmark all nine imputers on one venue (a mini Table VI).

Uses the public experiment API to run the paper's control protocol:
one TopoAC differentiation, nine imputers, WKNN positioning, averaged
over two held-out splits.  Takes a couple of minutes.
"""

import time

from repro.experiments import (
    IMPUTER_NAMES,
    PRESETS,
    get_dataset,
    imputer_differentiator,
    make_differentiator,
    make_imputer,
    run_pipeline,
)


def main() -> None:
    config = PRESETS["bench"]
    dataset = get_dataset("kaide", config)
    print(dataset.radio_map.describe())
    print(f"\n{'imputer':<10} {'APE (m)':>8} {'impute (s)':>11}")
    for name in IMPUTER_NAMES:
        differentiator = make_differentiator(
            imputer_differentiator(name), dataset, config
        )
        imputer = make_imputer(name, dataset, config)
        start = time.perf_counter()
        result = run_pipeline(
            dataset.radio_map,
            differentiator,
            imputer,
            ("WKNN",),
            config,
        )
        wall = time.perf_counter() - start
        print(
            f"{name:<10} {result.ape['WKNN']:8.2f} "
            f"{result.imputation_seconds:11.2f}   (wall {wall:.1f}s)"
        )


if __name__ == "__main__":
    main()
