#!/usr/bin/env python3
"""Generalisability scenario: Bluetooth fingerprinting (Longhu venue).

The paper's Table VIII shows the framework transfers from Wi-Fi to
Bluetooth beacons.  This example runs T-BiSIM against the LI baseline
on the Bluetooth venue, whose channel is shorter-range and noisier.
"""

import numpy as np

from repro.bisim import BiSIMConfig, BiSIMImputer
from repro.core import TopoACDifferentiator
from repro.datasets import make_dataset
from repro.imputers import LinearInterpolationImputer
from repro.positioning import WKNNEstimator, evaluate_pipeline


def main() -> None:
    dataset = make_dataset("longhu", scale=0.4, seed=7, n_passes=3)
    print(dataset.venue.describe())
    print(dataset.radio_map.describe())
    print(
        f"channel: bluetooth, shadowing sigma = "
        f"{dataset.channel.propagation.shadowing_sigma_db} dB, "
        f"detection floor = "
        f"{dataset.channel.detection_floor_dbm:.1f} dBm\n"
    )

    differentiator = TopoACDifferentiator(
        entities=dataset.venue.plan.entities
    )
    for label, imputer in [
        ("LI", LinearInterpolationImputer()),
        (
            "T-BiSIM",
            BiSIMImputer(config=BiSIMConfig(hidden_size=48, epochs=40)),
        ),
    ]:
        apes = []
        for seed in (0, 1):
            outcome = evaluate_pipeline(
                dataset.radio_map,
                differentiator,
                imputer,
                WKNNEstimator(),
                np.random.default_rng(seed),
            )
            apes.append(outcome.ape)
        print(f"{label:<8} APE = {np.mean(apes):.2f} m")


if __name__ == "__main__":
    main()
