#!/usr/bin/env python3
"""Trajectory tracking demo: sessions, motion-model fusion, hot swaps.

A phone navigating a mall emits a *sequence* of correlated scans.
This demo deploys one venue on a :class:`PositioningService`, layers a
:class:`TrackingService` on top (constant-velocity Kalman fusion plus
the venue's hallway polygons as a walkable constraint), then:

1. walks a simulated fleet through the venue — every device's scans
   go through ``step_batch`` in lockstep — and compares the tracked
   trajectory RMSE against answering each scan independently;
2. follows a single device scan by scan, printing raw fix vs fused
   track position;
3. hot-reloads the venue's model *mid-session* and keeps stepping —
   tracking state survives the swap because sessions hold the
   service, not its pipelines.

Run: ``PYTHONPATH=src python examples/trajectory_tracking.py``
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import TopoACDifferentiator
from repro.datasets import make_dataset
from repro.geometry import MultiPolygon
from repro.metrics import tracking_improvement, trajectory_rmse
from repro.serving import PositioningService
from repro.tracking import (
    TrackingScenario,
    TrackingService,
    replay_walks,
    simulate_walks,
)


def main() -> None:
    dataset = make_dataset("kaide", scale=0.3, seed=11, n_passes=2)
    service = PositioningService(cache_size=0)
    service.deploy(
        "kaide",
        dataset.radio_map,
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
    )
    tracking = TrackingService(service)
    tracking.register_walkable(
        "kaide", MultiPolygon(dataset.venue.plan.hallways)
    )

    # 1. A fleet in lockstep: tracked vs per-scan accuracy.
    scenario = TrackingScenario(
        devices=8, scan_interval=1.0, duration=30.0
    )
    walks = simulate_walks(dataset, scenario, seed=23)
    report = replay_walks(tracking, walks, scenario)
    print(report.render())
    print(tracking.stats.render())

    # 2. One device, scan by scan.
    walk = simulate_walks(
        dataset, TrackingScenario(devices=1, duration=12.0), seed=5
    )[0]
    sid = tracking.start("kaide", walk.scans[0], t=0.0)
    print(f"\nsession {sid}: raw fix -> fused track (truth)")
    raw_trail, fused_trail = [], []
    for k in range(1, len(walk)):
        fix = tracking.step(
            sid, walk.scans[k], t=float(walk.times[k])
        )
        raw_trail.append(fix.raw)
        fused_trail.append(fix.position)
        truth = walk.positions[k]
        print(
            f"  t={walk.times[k]:4.0f}s "
            f"raw=({fix.raw[0]:5.1f},{fix.raw[1]:5.1f}) -> "
            f"fused=({fix.position[0]:5.1f},{fix.position[1]:5.1f}) "
            f"truth=({truth[0]:5.1f},{truth[1]:5.1f})"
            + ("  [gated]" if not fix.accepted else "")
            + ("  [clamped]" if fix.clamped else "")
        )
    truth = walk.positions[1:]
    print(
        "  RMSE: raw "
        f"{trajectory_rmse(np.stack(raw_trail), truth):.2f}m, fused "
        f"{trajectory_rmse(np.stack(fused_trail), truth):.2f}m "
        f"({100 * tracking_improvement(np.stack(raw_trail), np.stack(fused_trail), truth):+.0f}%)"
    )

    # 3. Hot-swap the venue's model under the live session.
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "kaide.npz"
        service.shard("kaide").save(artifact)
        service.reload("kaide", artifact)
    fix = tracking.step(
        sid, walk.scans[-1], t=float(walk.times[-1]) + 1.0
    )
    print(
        f"\nafter hot reload the session keeps tracking: "
        f"fused=({fix.position[0]:.1f},{fix.position[1]:.1f})"
    )
    summary = tracking.end(sid)
    print(
        f"ended {summary.session_id}: {summary.steps} steps over "
        f"{summary.duration:.0f}s"
    )


if __name__ == "__main__":
    main()
