#!/usr/bin/env python3
"""Concurrent serving demo: micro-batching pipeline under load.

Deploys two venues on a thread-safe :class:`PositioningService`,
fronts it with a :class:`ServingPipeline` (micro-batches flush on
size or deadline, cache hits resolve at submit time), then drives it
from several worker threads two ways:

1. hand-rolled workers submitting scan bursts and collecting tickets,
   while the main thread hot-swaps one venue's model mid-traffic —
   the reload is atomic, so every answer comes from a whole pipeline;
2. the :mod:`repro.serving.loadgen` harness replaying a scenario with
   Zipf venue skew and device re-scan duplicates, reporting
   p50/p95/p99 latency and throughput.

Run: ``PYTHONPATH=src python examples/concurrent_serving.py``
"""

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.core import TopoACDifferentiator
from repro.datasets import make_dataset
from repro.serving import (
    PositioningService,
    Scenario,
    ServingPipeline,
    run_scenario,
    scan_pool,
)


def main() -> None:
    service = PositioningService(cache_size=2048)
    pools = {}
    rng = np.random.default_rng(11)
    for name in ("kaide", "longhu"):
        ds = make_dataset(name, scale=0.3, seed=7, n_passes=2)
        service.deploy(
            name,
            ds.radio_map,
            TopoACDifferentiator(entities=ds.venue.plan.entities),
        )
        pools[name] = scan_pool(ds, 256, rng)
    print(f"venues online: {service.venues}\n")

    # -- 1. threads + tickets + a hot reload in the middle ------------
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "kaide.npz"
        service.shard("kaide").save(artifact)

        with ServingPipeline(service, max_batch=128) as pipeline:

            def device(venue: str, n_bursts: int) -> None:
                for b in range(n_bursts):
                    burst = pools[venue][8 * b : 8 * b + 8]
                    tickets = pipeline.submit_many(venue, burst)
                    locations = np.stack(
                        [t.result(timeout=10.0) for t in tickets]
                    )
                    assert np.isfinite(locations).all()

            workers = [
                threading.Thread(target=device, args=(venue, 16))
                for venue in ("kaide", "longhu", "kaide", "kaide")
            ]
            for w in workers:
                w.start()
            # Hot-swap kaide's model while traffic is in flight: the
            # swap is atomic and the venue's cache is invalidated.
            service.reload("kaide", artifact)
            for w in workers:
                w.join()
            print("mid-traffic reload served without torn results")
            print(f"pipeline: {pipeline.stats.render()}")
            print(f"service:  {service.stats.render()}\n")

    # -- 2. the load harness: skewed, re-scanning traffic -------------
    service.reset_stats()
    with ServingPipeline(service, max_batch=256) as pipeline:
        report = run_scenario(
            pipeline,
            pools,
            Scenario(
                "demo",
                duplicate_rate=0.5,
                zipf_exponent=1.1,
                burst_size=32,
            ),
            threads=4,
            requests_per_thread=512,
            seed=3,
        )
    print("scenario replay:")
    print(report.render())


if __name__ == "__main__":
    main()
