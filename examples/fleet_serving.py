#!/usr/bin/env python3
"""City-scale fleet demo: multi-process serving under a memory budget.

Builds a synthetic city of venue shards, saves each to an
:class:`~repro.artifacts.ArtifactStore` (one ``.npz`` bundle per
venue), then serves a Zipf-skewed request stream two ways:

1. a lone :class:`~repro.serving.ShardRegistry` — lazy mmap loading
   plus LRU eviction in this process, to show the registry mechanics
   (watch ``lazy_loads`` / ``fast_reloads`` / ``evictions`` move as
   the budget shrinks);
2. a :class:`~repro.serving.ShardFleet` — the same store behind
   worker *processes*, venues hash-partitioned so each shard lives in
   exactly one worker, requests coalesced into per-venue batches.

Every fleet answer is compared bit-for-bit against the single-process
one: batching and multi-processing change no float anywhere.

Run: ``PYTHONPATH=src python examples/fleet_serving.py``
"""

import tempfile

import numpy as np

from repro.artifacts import ArtifactStore
from repro.serving import ShardFleet, ShardRegistry
from repro.serving.loadgen import fleet_schedule, synthetic_venue_pool

N_VENUES = 48
REQUESTS = 1500


def main() -> None:
    rng = np.random.default_rng(7)
    print(f"building a {N_VENUES}-venue city ...")
    shards, pools = synthetic_venue_pool(N_VENUES, rng)
    schedule = fleet_schedule(
        pools, REQUESTS, np.random.default_rng(8), zipf_exponent=1.1
    )

    with tempfile.TemporaryDirectory(prefix="fleet-demo-") as root:
        store = ArtifactStore(root)
        mapping = {}
        for venue, shard in shards.items():
            shard.save(store.path_for(venue))
            mapping[venue] = venue

        # -- 1. one process: the registry under a shrinking budget ---
        registry = ShardRegistry(store, mapping)
        expected = np.empty((len(schedule), 2))
        for i, (venue, row) in enumerate(schedule):
            expected[i] = registry.get(venue).locate(row[None])[0]
        print(f"\nno budget:     {registry.stats.render()}")

        # Keep roughly a third of the pool resident: the Zipf head
        # stays pinned, the tail churns through mmap fast reloads.
        budget = registry.stats.total_bytes // 3
        registry.memory_budget_bytes = budget  # evicts immediately
        for venue, row in schedule:
            registry.get(venue).locate(row[None])
        print(f"1/3 budget:    {registry.stats.render()}")
        registry.evict_all()

        # -- 2. two processes: same store, same stream, same answers -
        with ShardFleet(
            store,
            mapping,
            workers=2,
            memory_budget_mb=budget / (1 << 20),
            bundle_size=128,
        ) as fleet:
            tickets = fleet.submit_many(schedule)
            fleet.flush()
            got = np.stack([t.result(timeout=30.0) for t in tickets])
            stats = fleet.stats()

        print(f"\nfleet:         {stats.render()}")
        exact = bool(np.array_equal(got, expected))
        coalesced = sum(w.requests for w in stats.workers) / max(
            1, sum(w.batches for w in stats.workers)
        )
        print(
            f"\n{len(schedule)} requests over {N_VENUES} venues: "
            f"{coalesced:.1f} requests coalesced per venue batch, "
            f"parity {'bit-exact' if exact else 'MISMATCH'}"
        )
        assert exact


if __name__ == "__main__":
    main()
