#!/usr/bin/env python3
"""Quickstart: impute a sparse radio map and position with it.

Runs the paper's full pipeline on a synthetic Kaide-like venue:

1. build the venue + channel + walking survey + radio map;
2. differentiate missing RSSIs into MARs and MNARs with TopoAC;
3. impute MARs and missing RPs with BiSIM (T-BiSIM pipeline);
4. estimate positions for held-out records with WKNN and report APE.
"""

import numpy as np

from repro.bisim import BiSIMConfig, BiSIMImputer
from repro.core import TopoACDifferentiator
from repro.datasets import make_dataset
from repro.imputers import run_imputer
from repro.positioning import WKNNEstimator, evaluate_pipeline


def main() -> None:
    print("Building synthetic venue + walking survey ...")
    dataset = make_dataset("kaide", scale=0.4, seed=7, n_passes=3)
    print(f"  {dataset.venue.describe()}")
    print(f"  {dataset.radio_map.describe()}")

    print("\nDifferentiating missing RSSIs (TopoAC) ...")
    differentiator = TopoACDifferentiator(
        entities=dataset.venue.plan.entities
    )
    mask = differentiator.differentiate(dataset.radio_map)
    missing = mask != 1
    mar_share = (mask[missing] == 0).mean()
    print(
        f"  {missing.sum()} missing RSSIs, "
        f"{100 * mar_share:.1f}% classified MAR, "
        f"{dataset.radio_map.rp_observed_mask.sum()} observed RPs"
    )

    print("\nImputing with BiSIM (this trains a model; ~30 s) ...")
    imputer = BiSIMImputer(
        config=BiSIMConfig(hidden_size=48, epochs=40)
    )
    result = run_imputer(imputer, dataset.radio_map, mask)
    print(
        f"  imputed {dataset.radio_map.n_records} records in "
        f"{result.elapsed_seconds:.1f}s; "
        f"final training loss "
        f"{imputer.last_trainer_.history.final_loss:.4f}"
    )

    print("\nEvaluating indoor positioning (10% held-out RPs, WKNN) ...")
    outcome = evaluate_pipeline(
        dataset.radio_map,
        differentiator,
        BiSIMImputer(config=BiSIMConfig(hidden_size=48, epochs=40)),
        WKNNEstimator(),
        np.random.default_rng(0),
    )
    print(
        f"  APE = {outcome.ape:.2f} m over "
        f"{outcome.n_test_records} test records "
        f"(venue is {dataset.venue.plan.width:.0f} x "
        f"{dataset.venue.plan.height:.0f} m)"
    )


if __name__ == "__main__":
    main()
